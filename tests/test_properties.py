"""Property-based tests (hypothesis) for core invariants."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designated import DesignatedCoreMap
from repro.metrics.fairness import jain_index
from repro.metrics.reordering import ReorderingTracker
from repro.net import FiveTuple, Packet, make_tcp_packet
from repro.net.checksum import internet_checksum, tcp_checksum, verify_checksum
from repro.net.tcp_flags import is_connection_packet
from repro.nfs.dpi import AhoCorasick
from repro.nic.flow_director import FlowDirectorTable, build_checksum_spray_rules
from repro.nic.rss import (
    DEFAULT_RSS_KEY,
    SYMMETRIC_RSS_KEY,
    RssHasher,
    ToeplitzTable,
    rss_input_bytes,
    toeplitz_hash,
)

ips = st.integers(min_value=0, max_value=0xFFFFFFFF)
ports = st.integers(min_value=0, max_value=0xFFFF)


@st.composite
def five_tuples(draw, protocol=st.just(6)):
    return FiveTuple(draw(ips), draw(ips), draw(ports), draw(ports), draw(protocol))


class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=256))
    def test_internet_checksum_verifies_itself(self, data):
        """Appending the checksum makes the ones'-complement sum zero."""
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        assert internet_checksum(data + struct.pack("!H", checksum)) == 0

    @given(ips, ips, st.binary(min_size=20, max_size=200))
    def test_tcp_checksum_makes_segment_verify(self, src, dst, segment):
        # The checksum is computed over the segment with a zeroed
        # checksum field, then embedded at bytes 16..18.
        zeroed = segment[:16] + b"\x00\x00" + segment[18:]
        checksum = tcp_checksum(src, dst, zeroed)
        full = zeroed[:16] + struct.pack("!H", checksum) + zeroed[18:]
        assert verify_checksum(src, dst, 6, full)

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 63), st.integers(1, 255))
    def test_corruption_is_detected(self, data, position, delta):
        if len(data) % 2:
            data += b"\x00"
        position %= len(data)
        checksum = internet_checksum(data)
        corrupted = bytearray(data)
        corrupted[position] = (corrupted[position] + delta) % 256
        if bytes(corrupted) != data:
            total = internet_checksum(bytes(corrupted) + struct.pack("!H", checksum))
            assert total != 0


class TestHashProperties:
    @given(five_tuples())
    @settings(max_examples=50, deadline=None)
    def test_symmetric_key_direction_invariance(self, flow):
        forward = toeplitz_hash(SYMMETRIC_RSS_KEY, rss_input_bytes(flow))
        backward = toeplitz_hash(SYMMETRIC_RSS_KEY, rss_input_bytes(flow.reversed()))
        assert forward == backward

    @given(five_tuples(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_designated_core_in_range_and_symmetric(self, flow, num_cores):
        dmap = DesignatedCoreMap(num_cores)
        core = dmap.core_for(flow)
        assert 0 <= core < num_cores
        assert dmap.core_for(flow.reversed()) == core

    @given(five_tuples())
    @settings(max_examples=50, deadline=None)
    def test_canonical_form_is_stable(self, flow):
        assert flow.canonical() == flow.canonical().canonical()
        assert flow.canonical() == flow.reversed().canonical()


class TestHashCacheEquivalence:
    """The table-driven/memoized fast paths equal the bit-serial reference.

    The hot path never calls :func:`toeplitz_hash` — it goes through
    :class:`ToeplitzTable` partials and per-flow memos. These properties
    pin the whole stack to the reference implementation, for both
    standard keys, including memo hits and forced memo resets.
    """

    @given(st.sampled_from([DEFAULT_RSS_KEY, SYMMETRIC_RSS_KEY]),
           st.binary(min_size=0, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_table_driven_equals_bit_serial(self, key, data):
        table = ToeplitzTable(key, len(data))
        assert table.hash(data) == toeplitz_hash(key, data)

    @given(st.sampled_from([DEFAULT_RSS_KEY, SYMMETRIC_RSS_KEY]), five_tuples())
    @settings(max_examples=80, deadline=None)
    def test_cached_rss_hash_equals_reference(self, key, flow):
        hasher = RssHasher(num_queues=8, key=key)
        reference = toeplitz_hash(key, rss_input_bytes(flow))
        assert hasher.hash(flow) == reference  # cold: table-driven path
        assert hasher.hash(flow) == reference  # warm: memo hit

    @given(st.sampled_from([DEFAULT_RSS_KEY, SYMMETRIC_RSS_KEY]),
           st.lists(five_tuples(), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_memo_reset_does_not_change_hashes(self, key, flows):
        # A cache_limit of 2 forces constant clear-on-overflow resets;
        # results must still match an unbounded hasher's.
        tiny = RssHasher(num_queues=8, key=key, cache_limit=2)
        unbounded = RssHasher(num_queues=8, key=key)
        for flow in flows + flows:
            assert tiny.hash(flow) == unbounded.hash(flow)
            assert tiny.queue_for(flow) == unbounded.queue_for(flow)

    @given(five_tuples(), st.integers(min_value=1, max_value=16),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_cached_designated_core_equals_reference(self, flow, num_cores, symmetric):
        dmap = DesignatedCoreMap(num_cores, symmetric=symmetric)
        key = SYMMETRIC_RSS_KEY if symmetric else DEFAULT_RSS_KEY
        reference = toeplitz_hash(key, rss_input_bytes(flow)) % num_cores
        assert dmap.core_for(flow) == reference  # cold
        assert dmap.core_for(flow) == reference  # memo hit
        tiny = DesignatedCoreMap(num_cores, symmetric=symmetric, cache_limit=1)
        assert tiny.core_for(flow) == reference  # forced-reset path
        if symmetric:
            assert tiny.core_for(flow.reversed()) == reference


class TestSprayRuleProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_tcp_checksum_matches_some_rule(self, num_queues, checksum):
        table = FlowDirectorTable()
        table.add_rules(build_checksum_spray_rules(num_queues))
        flow = FiveTuple(1, 2, 3, 4, 6)
        packet = make_tcp_packet(flow, tcp_checksum=checksum)
        queue = table.match(packet)
        assert queue is not None
        assert 0 <= queue < num_queues


class TestPacketProperties:
    @given(five_tuples(), st.integers(0, 0x3F), st.integers(0, 1460))
    @settings(max_examples=50, deadline=None)
    def test_serialization_roundtrip(self, flow, flags, payload_len):
        packet = make_tcp_packet(flow, flags=flags, payload_len=payload_len)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.five_tuple == flow
        assert parsed.flags == flags
        assert parsed.payload_len == payload_len

    @given(st.integers(0, 0x3F))
    def test_connection_classification_matches_flag_bits(self, flags):
        assert is_connection_packet(flags) == bool(flags & 0x07)


class TestMetricProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
    def test_jain_bounds(self, values):
        index = jain_index(values)
        assert 1 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(st.permutations(list(range(12))))
    def test_reordering_tracker_counts_at_most_n_minus_1(self, order):
        tracker = ReorderingTracker()
        for seq in order:
            tracker.observe("flow", seq)
        assert 0 <= tracker.reordered_packets <= len(order) - 1
        if list(order) == sorted(order):
            assert tracker.reordered_packets == 0


class TestAhoCorasickProperties:
    @given(
        st.lists(st.binary(min_size=1, max_size=4), min_size=1, max_size=5, unique=True),
        st.binary(min_size=0, max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_agree_with_naive_search(self, patterns, text):
        ac = AhoCorasick(patterns)
        _state, matches = ac.scan(0, text)
        got = sorted(matches)
        expected = sorted(
            (offset + len(pattern) - 1, index)
            for index, pattern in enumerate(patterns)
            for offset in range(len(text) - len(pattern) + 1)
            if text[offset: offset + len(pattern)] == pattern
        )
        assert got == expected

    @given(
        st.lists(st.binary(min_size=1, max_size=3), min_size=1, max_size=3, unique=True),
        st.binary(min_size=0, max_size=80),
        st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_scan_equals_whole_scan(self, patterns, text, split):
        """Carrying automaton state across packets preserves matches —
        the exact property DPI loses when packets go to different cores."""
        split = min(split, len(text))
        ac = AhoCorasick(patterns)
        _state, whole = ac.scan(0, text)
        state, first = ac.scan(0, text[:split])
        _state, second = ac.scan(state, text[split:])
        combined = sorted(first + [(offset + split, index) for offset, index in second])
        assert sorted(whole) == combined
