"""Differential policy-conformance matrix: every steering mode, one bar.

Every policy in :data:`repro.core.config.MODES` — rss, sprayer, naive,
prognic, flowlet, subset, scr — must clear the same four invariants:

1. **Packet conservation** — after the simulation drains, every packet
   the NIC saw is forwarded or accounted to a named drop class.
2. **Byte-identical rerun** — the same seed reproduces the same
   summary and telemetry counters, byte for byte.
3. **``--jobs`` invariance** — a sweep over all modes returns
   byte-identical values whether run serially or on a process pool.
4. **Strict-checks purity** — arming the runtime checkers does not
   perturb results on violation-free traffic; and the one policy whose
   discipline *can* be violated (naive spraying of connection packets
   onto shared state) is caught red-handed by the auditor.

The matrix is the conformance bar for adding a steering mode: a new
policy that breaks any cell fails here, not in a downstream figure.
"""

import json
import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine, OwnershipViolation
from repro.core.config import MODES
from repro.experiments.harness import run_open_loop
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import Scenario
from repro.net import ACK, SYN, FiveTuple, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator

ALL_MODES = list(MODES)

RUN_KWARGS = dict(
    nf_cycles=1000,
    num_flows=8,
    offered_pps=2e6,
    duration=2 * MILLISECOND,
    warmup=500_000_000,  # 0.5 ms
    seed=7,
)


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, default=repr)


def strip_checks_family(counters):
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith("checks.")
    }


def strip_summary(summary):
    out = dict(summary)
    out["telemetry"] = strip_checks_family(summary.get("telemetry", {}))
    return out


def flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


def build_engine(mode: str, strict: bool = False, **config_kwargs):
    sim = Simulator()
    config = MiddleboxConfig(mode=mode, num_cores=8, **config_kwargs)
    engine = MiddleboxEngine(
        sim, SyntheticNf(busy_cycles=500), config, strict_checks=strict
    )
    engine.set_egress(lambda pkt: None)
    return sim, engine


def drive(sim, engine, seed=11, flows=6, packets=48) -> None:
    rng = random.Random(seed)
    for i in range(flows):
        engine.receive(
            make_tcp_packet(flow(i), flags=SYN, tcp_checksum=rng.getrandbits(16)),
            sim.now,
        )
    sim.run(until=sim.now + MILLISECOND)
    for seq in range(packets):
        for i in range(flows):
            packet = make_tcp_packet(
                flow(i), flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)
            )
            engine.receive(packet, sim.now)
        if seq % 16 == 15:
            sim.run(until=sim.now + MILLISECOND)
    sim.run(until=sim.now + 5 * MILLISECOND)


def test_matrix_covers_every_registered_mode():
    assert set(ALL_MODES) == {
        "rss", "sprayer", "naive", "prognic", "flowlet", "subset", "scr",
    }


@pytest.mark.parametrize("mode", ALL_MODES)
class TestConformanceMatrix:
    def test_packet_conservation(self, mode):
        sim, engine = build_engine(mode)
        drive(sim, engine)
        ledger = engine.conservation()
        assert ledger["in_queues"] == 0 and ledger["in_rings"] == 0
        assert ledger["rx_packets"] == ledger["accounted"], ledger

    def test_byte_identical_rerun(self, mode):
        first = run_open_loop(mode, **RUN_KWARGS)
        second = run_open_loop(mode, **RUN_KWARGS)
        assert first.rate_mpps == second.rate_mpps
        assert canonical(first.engine_summary) == canonical(second.engine_summary)
        assert canonical(first.telemetry["counters"]) == canonical(
            second.telemetry["counters"]
        )

    def test_strict_checks_are_pure_observers(self, mode):
        plain = run_open_loop(mode, **RUN_KWARGS)
        strict = run_open_loop(mode, strict_checks=True, **RUN_KWARGS)
        assert plain.rate_mpps == strict.rate_mpps
        assert canonical(strip_summary(plain.engine_summary)) == canonical(
            strip_summary(strict.engine_summary)
        )
        counters = strict.telemetry["counters"]
        assert counters["checks.ownership.violations"] == 0


@pytest.mark.parametrize("mode", ALL_MODES)
class TestSpineConformance:
    """The batch data path's acceptance bar: for every policy, the SoA
    spine (columnar bursts, eager steering, lazy settlement, deferred
    egress) must be byte-identical to the scalar spine — rates, engine
    summary, full telemetry (counters, time series, trace), and every
    latency sample. Policies that cannot batch (flowlet's gap detector
    is arrival-order-stateful) exercise the fallback: config accepts
    ``spine="batch"`` and the engine silently keeps scalar ingress."""

    def test_scalar_and_batch_rows_are_byte_identical(self, mode):
        scalar = run_open_loop(mode, spine="scalar", **RUN_KWARGS)
        batch = run_open_loop(mode, spine="batch", **RUN_KWARGS)
        assert scalar.rate_mpps == batch.rate_mpps
        assert scalar.rate_gbps == batch.rate_gbps
        assert canonical(scalar.engine_summary) == canonical(batch.engine_summary)
        assert canonical(scalar.telemetry) == canonical(batch.telemetry)
        assert scalar.latency.samples == batch.latency.samples


class TestJobsInvariance:
    """One sweep over all seven modes: serial == process pool."""

    def test_parallel_sweep_is_byte_identical(self):
        points = [
            Scenario.make("open_loop", label="conformance", mode=mode, **RUN_KWARGS)
            for mode in ALL_MODES
        ]
        serial = SweepRunner(jobs=1).run(points)
        parallel = SweepRunner(jobs=2).run(points)
        assert len(serial) == len(parallel) == len(ALL_MODES)
        for one, two in zip(serial, parallel):
            assert one.scenario == two.scenario
            assert canonical(one.values) == canonical(two.values)


class TestNaiveViolationIsCaught:
    """The matrix's negative control: naive spraying breaks the
    single-writer discipline, and the armed auditor says so."""

    def test_second_writer_core_raises_under_strict(self):
        sim, engine = build_engine("naive", strict=True)
        f = flow(1)
        # Two connection packets of one flow with checksums that spray
        # to different queues: two cores end up writing the same
        # shared-state entry (get_local on the second SYN is a write).
        engine.receive(make_tcp_packet(f, flags=SYN, tcp_checksum=0), sim.now)
        sim.run(until=sim.now + MILLISECOND)
        with pytest.raises(OwnershipViolation):
            engine.receive(make_tcp_packet(f, flags=SYN, tcp_checksum=1), sim.now)
            sim.run(until=sim.now + MILLISECOND)

    def test_same_traffic_is_clean_under_scr(self):
        """The identical adversarial pattern is *sanctioned* under SCR:
        each core writes only its own replica."""
        sim, engine = build_engine("scr", strict=True)
        f = flow(1)
        engine.receive(make_tcp_packet(f, flags=SYN, tcp_checksum=0), sim.now)
        sim.run(until=sim.now + MILLISECOND)
        engine.receive(make_tcp_packet(f, flags=SYN, tcp_checksum=1), sim.now)
        sim.run(until=sim.now + MILLISECOND)
        assert engine.checks.ownership.violations == 0
        assert engine.stats.packets_forwarded == 2
