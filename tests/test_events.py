"""Tests for the mOS-style event API."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.core.events import EventNf
from repro.net import ACK, FIN, RST, SYN, FiveTuple, make_tcp_packet
from repro.sim import MILLISECOND, Simulator


def flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


class RecordingNf(EventNf):
    """Records every event with the core it ran on."""

    name = "recorder"

    def __init__(self):
        self.events = []
        self.drop_ports = set()

    def create_state(self, flow):
        return {"packets": 0}

    def on_connection_start(self, flow, state, ctx):
        self.events.append(("start", flow, ctx.core_id))

    def on_connection_established(self, flow, state, ctx):
        self.events.append(("established", flow, ctx.core_id))

    def on_connection_end(self, flow, state, ctx):
        self.events.append(("end", flow, ctx.core_id))

    def on_packet(self, packet, state, ctx):
        self.events.append(("packet", packet.five_tuple, ctx.core_id))
        if packet.five_tuple.dst_port in self.drop_ports:
            return False
        return True


class _Harness:
    def __init__(self, mode="sprayer"):
        self.sim = Simulator()
        self.nf = RecordingNf()
        self.engine = MiddleboxEngine(
            self.sim, self.nf, MiddleboxConfig(mode=mode, num_cores=8)
        )
        self.out = []
        self.engine.set_egress(self.out.append)
        self.rng = random.Random(4)

    def send(self, f, flags=ACK, seq=0):
        self.engine.receive(
            make_tcp_packet(f, flags=flags, seq=seq,
                            tcp_checksum=self.rng.getrandbits(16)),
            self.sim.now,
        )
        self.sim.run(until=self.sim.now + MILLISECOND)


class TestLifecycleEvents:
    def test_full_connection_event_sequence(self):
        harness = _Harness()
        f = flow()
        harness.send(f, flags=SYN)
        harness.send(f.reversed(), flags=SYN | ACK)
        harness.send(f, flags=ACK, seq=1)
        harness.send(f, flags=FIN | ACK)
        harness.send(f.reversed(), flags=FIN | ACK)
        kinds = [event[0] for event in harness.nf.events]
        assert kinds == ["start", "established", "packet", "end"]

    def test_rst_ends_immediately(self):
        harness = _Harness()
        f = flow()
        harness.send(f, flags=SYN)
        harness.send(f, flags=RST)
        kinds = [event[0] for event in harness.nf.events]
        assert kinds == ["start", "end"]
        assert harness.engine.flow_state.total_entries() == 0

    def test_syn_retransmission_fires_start_once(self):
        harness = _Harness()
        harness.send(flow(), flags=SYN)
        harness.send(flow(), flags=SYN)
        kinds = [event[0] for event in harness.nf.events]
        assert kinds.count("start") == 1

    def test_double_rst_fires_end_once(self):
        harness = _Harness()
        f = flow()
        harness.send(f, flags=SYN)
        harness.send(f, flags=RST)
        harness.send(f, flags=RST)
        kinds = [event[0] for event in harness.nf.events]
        assert kinds.count("end") == 1


class TestEventPlacement:
    def test_lifecycle_events_run_on_designated_core(self):
        """mOS-on-Sprayer's free lunch: state-mutating events land
        where mutation is legal."""
        harness = _Harness()
        for i in range(10):
            f = flow(i)
            harness.send(f, flags=SYN)
            harness.send(f, flags=RST)
        for kind, f, core in harness.nf.events:
            if kind in ("start", "end", "established"):
                assert core == harness.engine.designated_core(f)

    def test_packets_run_on_many_cores_under_sprayer(self):
        harness = _Harness()
        f = flow()
        harness.send(f, flags=SYN)
        for seq in range(64):
            harness.send(f, flags=ACK, seq=seq)
        packet_cores = {core for kind, _f, core in harness.nf.events if kind == "packet"}
        assert len(packet_cores) >= 4

    def test_works_under_rss_too(self):
        harness = _Harness(mode="rss")
        f = flow()
        harness.send(f, flags=SYN)
        harness.send(f, flags=ACK, seq=0)
        harness.send(f, flags=RST)
        kinds = [event[0] for event in harness.nf.events]
        assert kinds == ["start", "packet", "end"]


class TestPacketVerdicts:
    def test_on_packet_false_drops(self):
        harness = _Harness()
        harness.nf.drop_ports.add(80)
        f = flow()
        harness.send(f, flags=SYN)
        harness.send(f, flags=ACK, seq=0)
        # SYN forwarded, data dropped by the verdict.
        assert len(harness.out) == 1

    def test_untracked_packet_gets_none_state(self):
        harness = _Harness()
        harness.send(flow(), flags=ACK)  # no SYN first
        kind, f, _core = harness.nf.events[0]
        assert kind == "packet"
        assert len(harness.out) == 1  # default verdict forwards
