"""Unit tests for the Toeplitz RSS model."""

import pytest

from repro.net import FiveTuple, ip_to_int
from repro.nic.rss import (
    DEFAULT_RSS_KEY,
    SYMMETRIC_RSS_KEY,
    RssHasher,
    rss_input_bytes,
    toeplitz_hash,
)

#: Microsoft RSS verification-suite vectors (IPv4 + TCP ports).
MICROSOFT_VECTORS = [
    ("66.9.149.187", "161.142.100.80", 2794, 1766, 0x51CCC178),
    ("199.92.111.2", "65.69.140.83", 14230, 4739, 0xC626B0EA),
    ("24.19.198.95", "12.22.207.184", 12898, 38024, 0x5C2B394A),
    ("38.27.205.30", "209.142.163.6", 48228, 2217, 0xAFC7327F),
    ("153.39.163.191", "202.188.127.2", 44251, 1303, 0x10E828A2),
]


class TestToeplitz:
    @pytest.mark.parametrize("src,dst,sport,dport,expected", MICROSOFT_VECTORS)
    def test_microsoft_verification_vectors(self, src, dst, sport, dport, expected):
        flow = FiveTuple(ip_to_int(src), ip_to_int(dst), sport, dport, 6)
        assert toeplitz_hash(DEFAULT_RSS_KEY, rss_input_bytes(flow)) == expected

    def test_short_key_raises(self):
        with pytest.raises(ValueError):
            toeplitz_hash(b"\x01\x02", b"\x00" * 12)

    def test_default_key_is_not_symmetric(self):
        flow = FiveTuple(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), 1111, 80, 6)
        forward = toeplitz_hash(DEFAULT_RSS_KEY, rss_input_bytes(flow))
        backward = toeplitz_hash(DEFAULT_RSS_KEY, rss_input_bytes(flow.reversed()))
        assert forward != backward

    @pytest.mark.parametrize("seed", range(10))
    def test_symmetric_key_hashes_both_directions_equally(self, seed):
        import random

        rng = random.Random(seed)
        flow = FiveTuple(
            rng.getrandbits(32), rng.getrandbits(32),
            rng.randrange(65536), rng.randrange(65536), 6,
        )
        forward = toeplitz_hash(SYMMETRIC_RSS_KEY, rss_input_bytes(flow))
        backward = toeplitz_hash(SYMMETRIC_RSS_KEY, rss_input_bytes(flow.reversed()))
        assert forward == backward


class TestRssHasher:
    def _flow(self, i: int) -> FiveTuple:
        return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 1000 + i, 80, 6)

    def test_queue_assignment_is_deterministic(self):
        hasher = RssHasher(num_queues=8)
        flow = self._flow(1)
        assert hasher.queue_for(flow) == hasher.queue_for(flow)

    def test_queue_in_range(self):
        hasher = RssHasher(num_queues=8)
        for i in range(100):
            assert 0 <= hasher.queue_for(self._flow(i)) < 8

    def test_symmetric_hasher_maps_both_directions_to_same_queue(self):
        hasher = RssHasher(num_queues=8, key=SYMMETRIC_RSS_KEY)
        for i in range(50):
            flow = self._flow(i)
            assert hasher.queue_for(flow) == hasher.queue_for(flow.reversed())

    def test_flows_spread_over_queues(self):
        hasher = RssHasher(num_queues=8)
        queues = {hasher.queue_for(self._flow(i)) for i in range(200)}
        assert len(queues) == 8  # with 200 flows every queue gets hit

    def test_cache_hits_return_same_hash(self):
        hasher = RssHasher(num_queues=4)
        flow = self._flow(7)
        assert hasher.hash(flow) == hasher.hash(flow)

    def test_custom_indirection_table(self):
        hasher = RssHasher(num_queues=4)
        hasher.set_indirection([0] * 128)
        assert hasher.queue_for(self._flow(3)) == 0

    def test_indirection_validation(self):
        hasher = RssHasher(num_queues=4)
        with pytest.raises(ValueError):
            hasher.set_indirection([0] * 10)  # wrong length
        with pytest.raises(ValueError):
            hasher.set_indirection([9] * 128)  # queue id out of range

    def test_is_symmetric_probe(self):
        assert RssHasher(4, key=SYMMETRIC_RSS_KEY).is_symmetric()
        assert not RssHasher(4, key=DEFAULT_RSS_KEY).is_symmetric()

    def test_zero_queues_rejected(self):
        with pytest.raises(ValueError):
            RssHasher(num_queues=0)
