"""Shared test configuration.

Hypothesis runs with no deadline: the simulation-heavy property tests
have occasional slow examples (building engines, scanning automata) and
wall-clock deadlines would make them flaky on loaded machines.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")
