"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim import MICROSECOND, MILLISECOND, Simulator
from repro.sim.timeunits import (
    SECOND,
    cycles_to_time,
    microseconds,
    milliseconds,
    seconds,
    time_to_cycles,
    to_microseconds,
    to_milliseconds,
    to_seconds,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(30, order.append, "c")
        sim.at(10, order.append, "a")
        sim.at(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.at(100, order.append, tag)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_after_is_relative_to_now(self):
        sim = Simulator()
        times = []
        sim.at(50, lambda: sim.after(25, lambda: times.append(sim.now)))
        sim.run()
        assert times == [75]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(50, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.after(-1, lambda: None)

    def test_callbacks_receive_arguments(self):
        sim = Simulator()
        seen = []
        sim.at(1, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.at(10, fired.append, "early")
        sim.at(1000, fired.append, "late")
        sim.run(until=100)
        assert fired == ["early"]
        assert sim.now == 100  # clock advanced to the boundary exactly

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.at(10, fired.append, 1)
        sim.at(200, fired.append, 2)
        sim.run(until=100)
        sim.run(until=300)
        assert fired == [1, 2]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.at(t, lambda: None)
        assert sim.run() == 3
        assert sim.events_processed == 3

    def test_max_events_backstop(self):
        sim = Simulator()

        def reschedule():
            sim.after(1, reschedule)

        sim.at(0, reschedule)
        processed = sim.run(max_events=50)
        assert processed == 50

    def test_stop_halts_the_loop(self):
        sim = Simulator()
        fired = []
        sim.at(1, fired.append, "a")
        sim.at(2, lambda: sim.stop())
        sim.at(3, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_empty_run_is_a_noop(self):
        sim = Simulator()
        assert sim.run() == 0
        assert sim.now == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.at(10, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_twice_is_safe(self):
        sim = Simulator()
        handle = sim.at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_drain_cancelled_compacts_heap(self):
        sim = Simulator()
        handles = [sim.at(10 + i, lambda: None) for i in range(100)]
        for handle in handles[:60]:
            handle.cancel()
        dropped = sim.drain_cancelled()
        assert dropped == 60
        assert sim.pending_events == 40


class TestTimeUnits:
    def test_cycle_at_2ghz_is_500ps(self):
        assert cycles_to_time(1, 2.0e9) == 500

    def test_cycles_roundtrip(self):
        ps = cycles_to_time(12345, 2.0e9)
        assert time_to_cycles(ps, 2.0e9) == pytest.approx(12345)

    def test_unit_constants_are_consistent(self):
        assert MILLISECOND == 1000 * MICROSECOND
        assert SECOND == 1000 * MILLISECOND

    def test_conversions(self):
        assert to_seconds(SECOND) == 1.0
        assert to_milliseconds(SECOND) == 1000.0
        assert to_microseconds(MICROSECOND) == 1.0
        assert seconds(1.5) == 3 * SECOND // 2
        assert milliseconds(2) == 2 * MILLISECOND
        assert microseconds(0.5) == MICROSECOND // 2

    def test_bad_clock_raises(self):
        with pytest.raises(ValueError):
            cycles_to_time(1, 0)
        with pytest.raises(ValueError):
            time_to_cycles(1, -1)
