"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim import MICROSECOND, MILLISECOND, Simulator
from repro.sim.engine import COMPACT_THRESHOLD
from repro.sim.timeunits import (
    SECOND,
    cycles_to_time,
    microseconds,
    milliseconds,
    seconds,
    time_to_cycles,
    to_microseconds,
    to_milliseconds,
    to_seconds,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(30, order.append, "c")
        sim.at(10, order.append, "a")
        sim.at(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.at(100, order.append, tag)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_after_is_relative_to_now(self):
        sim = Simulator()
        times = []
        sim.at(50, lambda: sim.after(25, lambda: times.append(sim.now)))
        sim.run()
        assert times == [75]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(50, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.after(-1, lambda: None)

    def test_callbacks_receive_arguments(self):
        sim = Simulator()
        seen = []
        sim.at(1, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.at(10, fired.append, "early")
        sim.at(1000, fired.append, "late")
        sim.run(until=100)
        assert fired == ["early"]
        assert sim.now == 100  # clock advanced to the boundary exactly

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.at(10, fired.append, 1)
        sim.at(200, fired.append, 2)
        sim.run(until=100)
        sim.run(until=300)
        assert fired == [1, 2]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.at(t, lambda: None)
        assert sim.run() == 3
        assert sim.events_processed == 3

    def test_max_events_backstop(self):
        sim = Simulator()

        def reschedule():
            sim.after(1, reschedule)

        sim.at(0, reschedule)
        processed = sim.run(max_events=50)
        assert processed == 50

    def test_stop_halts_the_loop(self):
        sim = Simulator()
        fired = []
        sim.at(1, fired.append, "a")
        sim.at(2, lambda: sim.stop())
        sim.at(3, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_empty_run_is_a_noop(self):
        sim = Simulator()
        assert sim.run() == 0
        assert sim.now == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.at(10, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_twice_is_safe(self):
        sim = Simulator()
        handle = sim.at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_drain_cancelled_compacts_heap(self):
        sim = Simulator()
        handles = [sim.at(10 + i, lambda: None) for i in range(100)]
        for handle in handles[:60]:
            handle.cancel()
        dropped = sim.drain_cancelled()
        assert dropped == 60
        assert sim.pending_events == 40


class TestPostScheduling:
    """The handle-free fire-and-forget tier (``post``/``post_after``)."""

    def test_post_fires_in_time_order_with_at_events(self):
        sim = Simulator()
        order = []
        sim.at(20, order.append, "at-20")
        sim.post(10, order.append, "post-10")
        sim.post(30, order.append, "post-30")
        sim.run()
        assert order == ["post-10", "at-20", "post-30"]

    def test_same_time_post_and_at_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.post(100, order.append, "first")
        sim.at(100, order.append, "second")
        sim.post(100, order.append, "third")
        sim.run()
        assert order == ["first", "second", "third"]

    def test_post_after_is_relative_to_now(self):
        sim = Simulator()
        times = []
        sim.at(50, lambda: sim.post_after(25, lambda: times.append(sim.now)))
        sim.run()
        assert times == [75]

    def test_post_in_the_past_raises(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.post(50, lambda: None)

    def test_post_after_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.post_after(-1, lambda: None)

    def test_post_returns_nothing(self):
        sim = Simulator()
        assert sim.post(1, lambda: None) is None
        assert sim.post_after(1, lambda: None) is None

    def test_post_callbacks_receive_arguments(self):
        sim = Simulator()
        seen = []
        sim.post(1, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]

    def test_post_events_count_as_live(self):
        sim = Simulator()
        sim.post(10, lambda: None)
        assert sim.has_live_events()
        sim.run()
        assert not sim.has_live_events()

    def test_post_events_survive_compaction(self):
        sim = Simulator()
        fired = []
        sim.post(10, fired.append, "keep")
        handles = [sim.at(20 + i, lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        assert sim.drain_cancelled() == 10
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["keep"]


class TestLiveEventTracking:
    """``has_live_events`` stays O(1) and exact under heavy cancellation."""

    def test_has_live_events_false_with_only_cancelled_entries(self):
        sim = Simulator()
        handles = [sim.at(10 + i, lambda: None) for i in range(10)]
        assert sim.has_live_events()
        for handle in handles:
            handle.cancel()
        # The heap may still hold (lazily cancelled) entries, but no
        # live event is pending.
        assert not sim.has_live_events()

    def test_ten_thousand_cancelled_timers(self):
        """Regression: 10k cancelled timers must not look like live work.

        The original implementation answered ``has_live_events`` by
        peeking at the heap, so a heap full of dead timers reported
        live work (and drain-style callers spun). The counter-based
        implementation must report quiescence exactly, and the
        auto-compaction triggered on the cancel path must shrink the
        heap once cancelled entries dominate it.
        """
        sim = Simulator()
        keeper_fired = []
        sim.at(1_000_000, keeper_fired.append, "keeper")
        handles = [sim.at(10 + i, lambda: None) for i in range(10_000)]
        for handle in handles:
            handle.cancel()
        # All 10k are dead; only the keeper is live.
        assert sim.has_live_events()
        # Auto-compaction fired on the cancel path (cancelled entries
        # crossed COMPACT_THRESHOLD while outnumbering live ones), so
        # the heap no longer holds the bulk of the dead timers — at
        # most a sub-threshold residue plus the keeper.
        assert sim.pending_events <= COMPACT_THRESHOLD + 1
        sim.drain_cancelled()
        assert sim.pending_events == 1
        assert sim.run() == 1
        assert keeper_fired == ["keeper"]
        assert not sim.has_live_events()
        assert sim.pending_events == 0

    def test_all_timers_cancelled_is_quiescent(self):
        sim = Simulator()
        handles = [sim.at(10 + i, lambda: None) for i in range(10_000)]
        for handle in handles:
            handle.cancel()
        assert not sim.has_live_events()
        assert sim.pending_events <= COMPACT_THRESHOLD  # auto-compacted
        assert sim.run() == 0
        assert sim.now == 0  # no live event ever fired

    def test_cancelling_during_run_keeps_counter_exact(self):
        sim = Simulator()
        fired = []
        later = [sim.at(100 + i, fired.append, i) for i in range(100)]

        def cancel_most():
            for handle in later[:90]:
                handle.cancel()
            assert sim.has_live_events()

        sim.at(1, cancel_most)
        sim.run()
        assert fired == list(range(90, 100))
        assert not sim.has_live_events()

    def test_popping_cancelled_entries_compacts_mid_run(self):
        """Cancelled entries popped during run() also trigger compaction."""
        sim = Simulator()
        fired = []
        handles = [sim.at(10 + i, lambda: None) for i in range(2000)]
        sim.at(5000, fired.append, "tail")

        def cancel_all():
            for handle in handles:
                handle.cancel()

        sim.at(1, cancel_all)
        sim.run()
        assert fired == ["tail"]
        assert sim.pending_events == 0
        assert not sim.has_live_events()


class TestTimeUnits:
    def test_cycle_at_2ghz_is_500ps(self):
        assert cycles_to_time(1, 2.0e9) == 500

    def test_cycles_roundtrip(self):
        ps = cycles_to_time(12345, 2.0e9)
        assert time_to_cycles(ps, 2.0e9) == pytest.approx(12345)

    def test_unit_constants_are_consistent(self):
        assert MILLISECOND == 1000 * MICROSECOND
        assert SECOND == 1000 * MILLISECOND

    def test_conversions(self):
        assert to_seconds(SECOND) == 1.0
        assert to_milliseconds(SECOND) == 1000.0
        assert to_microseconds(MICROSECOND) == 1.0
        assert seconds(1.5) == 3 * SECOND // 2
        assert milliseconds(2) == 2 * MILLISECOND
        assert microseconds(0.5) == MICROSECOND // 2

    def test_bad_clock_raises(self):
        with pytest.raises(ValueError):
            cycles_to_time(1, 0)
        with pytest.raises(ValueError):
            time_to_cycles(1, -1)
