"""Tests for the out-of-order-tolerant DPI (§7, O3FA-style)."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, FIN, SYN, FiveTuple, make_tcp_packet
from repro.nfs import OooDpiNf
from repro.sim import MILLISECOND, Simulator

PATTERNS = [b"attack", b"malware"]


def flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


class _Harness:
    def __init__(self, mode="sprayer", **nf_kwargs):
        self.sim = Simulator()
        self.nf = OooDpiNf(PATTERNS, **nf_kwargs)
        self.engine = MiddleboxEngine(
            self.sim, self.nf, MiddleboxConfig(mode=mode, num_cores=8)
        )
        self.engine.set_egress(lambda p: None)
        self.rng = random.Random(8)

    def open(self, f):
        self.engine.receive(
            make_tcp_packet(f, flags=SYN, tcp_checksum=self.rng.getrandbits(16)),
            self.sim.now,
        )
        self.sim.run(until=self.sim.now + MILLISECOND)

    def data(self, f, seq, payload):
        packet = make_tcp_packet(
            f, flags=ACK, seq=seq, tcp_checksum=self.rng.getrandbits(16)
        )
        packet.payload = payload
        packet.payload_len = len(payload)
        self.engine.receive(packet, self.sim.now)
        self.sim.run(until=self.sim.now + MILLISECOND)

    def fin(self, f):
        self.engine.receive(
            make_tcp_packet(f, flags=FIN | ACK, tcp_checksum=self.rng.getrandbits(16)),
            self.sim.now,
        )
        self.sim.run(until=self.sim.now + MILLISECOND)


class TestInOrderMatching:
    def test_within_packet_match(self):
        harness = _Harness()
        harness.open(flow())
        harness.data(flow(), 0, b"xx attack xx")
        harness.fin(flow())
        assert len(harness.nf.matches) == 1

    def test_cross_packet_match_in_order(self):
        harness = _Harness()
        harness.open(flow())
        harness.data(flow(), 0, b"...att")
        harness.data(flow(), 1, b"ack...")
        harness.fin(flow())
        assert len(harness.nf.matches) == 1


class TestOutOfOrderMatching:
    def test_cross_packet_match_survives_reordering(self):
        """The O3FA property: arrival order does not matter."""
        harness = _Harness()
        harness.open(flow())
        harness.data(flow(), 1, b"ack...")  # second half arrives first
        harness.data(flow(), 0, b"...att")
        harness.fin(flow())
        assert len(harness.nf.matches) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_random_permutations_equal_in_order_result(self, seed):
        chunks = [b"aaatt", b"ackbb", b"bmal", b"warexx", b"attack!"]
        rng = random.Random(seed)
        order = list(enumerate(chunks))
        rng.shuffle(order)
        harness = _Harness()
        harness.open(flow())
        for seq, chunk in order:
            harness.data(flow(), seq, chunk)
        harness.fin(flow())
        # In-order reference: one "attack" spans chunks 0-1, "malware"
        # spans 2-3, another "attack" sits inside chunk 4.
        assert len(harness.nf.matches) == 3

    def test_hole_delays_detection_until_filled(self):
        harness = _Harness()
        harness.open(flow())
        harness.data(flow(), 1, b"tack!!")  # waits for seq 0
        assert harness.nf.matches == []
        assert harness.nf.pending_segments(flow()) >= 1
        harness.data(flow(), 0, b"xx at")
        harness.fin(flow())
        assert len(harness.nf.matches) == 1
        assert harness.nf.pending_segments(flow()) == 0


class TestBufferBound:
    def test_overflow_falls_back_to_context_free_scan(self):
        harness = _Harness(max_buffered_segments=2)
        harness.open(flow())
        # seq 0 never arrives; the buffer fills with 1..2 and overflows.
        harness.data(flow(), 1, b"...")
        harness.data(flow(), 2, b"...")
        harness.data(flow(), 3, b"zz attack zz")  # overflow: scanned alone
        assert harness.nf.buffer_overflows == 1
        assert len(harness.nf.matches) == 1  # within-packet match still found

    def test_fin_cleans_staging(self):
        harness = _Harness()
        harness.open(flow())
        harness.data(flow(), 1, b"orphan")  # hole at 0 forever
        harness.fin(flow())
        assert harness.nf.pending_segments(flow()) == 0


class TestPartitionDiscipline:
    def test_works_under_every_spraying_mode(self):
        for mode in ("rss", "sprayer", "prognic"):
            harness = _Harness(mode=mode)
            harness.open(flow())
            harness.data(flow(), 0, b"...att")
            harness.data(flow(), 1, b"ack...")
            harness.fin(flow())
            assert len(harness.nf.matches) == 1, mode

    def test_validation(self):
        with pytest.raises(ValueError):
            OooDpiNf(PATTERNS, max_buffered_segments=0)
