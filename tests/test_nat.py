"""Unit/integration tests for the NAT (paper Figure 5)."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, FIN, RST, SYN, FiveTuple, make_tcp_packet
from repro.nfs import NatNf, PortPool
from repro.sim import MILLISECOND, Simulator

EXTERNAL_IP = 0x0B000001


def flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


class TestPortPool:
    def test_allocate_release_cycle(self):
        pool = PortPool(EXTERNAL_IP, 1024, 1027)
        ports = {pool.allocate() for _ in range(4)}
        assert ports == {1024, 1025, 1026, 1027}
        assert pool.allocate() is None
        pool.release(1025)
        assert pool.allocate() == 1025

    def test_double_release_rejected(self):
        pool = PortPool(EXTERNAL_IP, 1024, 1027)
        port = pool.allocate()
        pool.release(port)
        with pytest.raises(ValueError):
            pool.release(port)

    def test_allocate_matching_returns_predicate_hit(self):
        pool = PortPool(EXTERNAL_IP, 1024, 2047)
        port = pool.allocate_matching(lambda p: p % 8 == 3)
        assert port is not None and port % 8 == 3

    def test_allocate_matching_returns_rejects_to_pool(self):
        pool = PortPool(EXTERNAL_IP, 1024, 1031)
        before = len(pool)
        port = pool.allocate_matching(lambda p: p == 1030)
        assert port == 1030
        assert len(pool) == before - 1  # only the chosen port is gone

    def test_allocate_matching_gives_up(self):
        pool = PortPool(EXTERNAL_IP, 1024, 1031)
        assert pool.allocate_matching(lambda p: False, max_tries=8) is None
        assert len(pool) == 8  # everything returned

    def test_bad_range(self):
        with pytest.raises(ValueError):
            PortPool(EXTERNAL_IP, 5000, 4000)


class _NatHarness:
    """NAT behind a Sprayer engine, with an egress capture."""

    def __init__(self, mode="sprayer"):
        self.sim = Simulator()
        self.nat = NatNf(external_ip=EXTERNAL_IP)
        self.engine = MiddleboxEngine(
            self.sim, self.nat, MiddleboxConfig(mode=mode, num_cores=8)
        )
        self.out = []
        self.engine.set_egress(self.out.append)
        self.rng = random.Random(23)

    def send(self, five_tuple, flags=ACK, seq=0):
        packet = make_tcp_packet(
            five_tuple, flags=flags, seq=seq, tcp_checksum=self.rng.getrandbits(16)
        )
        self.engine.receive(packet, self.sim.now)
        self.sim.run(until=self.sim.now + MILLISECOND)
        return packet

    def open(self, five_tuple):
        self.send(five_tuple, flags=SYN)
        return self.out[-1].five_tuple  # the translated tuple


@pytest.mark.parametrize("mode", ["rss", "sprayer", "prognic"])
class TestNatTranslation:
    def test_syn_is_translated_to_external(self, mode):
        harness = _NatHarness(mode)
        translated = harness.open(flow())
        assert translated.src_ip == EXTERNAL_IP
        assert translated.dst_ip == flow().dst_ip
        assert translated.dst_port == flow().dst_port
        assert translated.src_port != flow().src_port or True  # port from pool

    def test_data_uses_installed_translation(self, mode):
        harness = _NatHarness(mode)
        translated = harness.open(flow())
        harness.send(flow(), flags=ACK, seq=1)
        assert harness.out[-1].five_tuple == translated

    def test_reverse_direction_translated_back(self, mode):
        harness = _NatHarness(mode)
        translated = harness.open(flow())
        # The server answers toward the external (ip, port).
        harness.send(translated.reversed(), flags=ACK)
        assert harness.out[-1].five_tuple == flow().reversed()

    def test_unknown_flow_dropped(self, mode):
        harness = _NatHarness(mode)
        harness.send(flow(), flags=ACK)
        assert harness.out == []
        assert harness.nat.drops_no_translation == 1

    def test_distinct_flows_get_distinct_ports(self, mode):
        harness = _NatHarness(mode)
        translations = {harness.open(flow(i)).src_port for i in range(10)}
        assert len(translations) == 10


class TestNatLifecycle:
    def test_rst_tears_down_and_releases_port(self):
        harness = _NatHarness()
        pool_before = len(harness.nat.pool)
        harness.open(flow())
        assert harness.nat.translations_active == 1
        harness.send(flow(), flags=RST)
        assert harness.nat.translations_active == 0
        assert len(harness.nat.pool) == pool_before
        assert harness.engine.flow_state.total_entries() == 0

    def test_two_fins_tear_down(self):
        harness = _NatHarness()
        translated = harness.open(flow())
        harness.send(flow(), flags=FIN | ACK)
        assert harness.nat.translations_active == 1  # half closed
        harness.send(translated.reversed(), flags=FIN | ACK)
        assert harness.nat.translations_active == 0

    def test_syn_retransmission_reuses_translation(self):
        harness = _NatHarness()
        first = harness.open(flow())
        second = harness.open(flow())
        assert first == second
        assert harness.nat.translations_active == 1

    def test_pool_exhaustion_drops_new_connections(self):
        harness = _NatHarness()
        harness.nat.pool = PortPool(EXTERNAL_IP, 1024, 1024 + 7)
        opened = 0
        for i in range(40):
            before = harness.nat.translations_active
            harness.send(flow(i), flags=SYN)
            opened += harness.nat.translations_active - before
        assert opened <= 8
        assert harness.nat.drops_no_port > 0


class TestNatAffinity:
    def test_translated_reverse_lands_on_same_designated_core(self):
        """Figure 5 lines 24-25 only work with affinity-preserving
        port selection: the reverse tuple must hash to the same core."""
        harness = _NatHarness()
        for i in range(12):
            translated = harness.open(flow(i))
            reverse_key = translated.reversed()
            assert harness.engine.designated_core(reverse_key) == (
                harness.engine.designated_core(flow(i))
            )
