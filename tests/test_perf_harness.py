"""Unit tests for the perf-regression harness (``repro.perf``)."""

import json

import pytest

from repro.perf.io import TableLog, bench_filename, find_bench_files, read_json, write_json
from repro.perf.runner import (
    compare_results,
    find_baseline,
    load_baseline,
    run_suite,
    write_bench,
)
from repro.perf.workloads import WORKLOADS
from repro.perf.__main__ import main as perf_main


def _doc(mode="quick", date="2026-01-01", profiled=False, **workloads):
    """A minimal result document for comparison tests."""
    return {
        "schema": 1,
        "date": date,
        "mode": mode,
        "profiled": profiled,
        "workloads": {
            name: {"wall_s": wall, "ops": 100, "ops_per_s": 100 / wall,
                   "fingerprint": fp}
            for name, (wall, fp) in workloads.items()
        },
    }


class TestBenchFiles:
    def test_bench_filename_modes(self):
        assert bench_filename("2026-08-06", quick=False) == "BENCH_2026-08-06.json"
        assert bench_filename("2026-08-06", quick=True) == "BENCH_2026-08-06-quick.json"

    def test_write_then_read_roundtrip(self, tmp_path):
        payload = {"b": 2, "a": [1, 2]}
        path = write_json(tmp_path / "x.json", payload)
        assert read_json(path) == payload
        assert path.read_text().endswith("\n")

    def test_find_bench_files_filters_by_mode_and_sorts(self, tmp_path):
        for name in (
            "BENCH_2026-03-02.json",
            "BENCH_2026-03-01.json",
            "BENCH_2026-03-03-quick.json",
            "BENCH_bogus.json",
            "notes.txt",
        ):
            (tmp_path / name).write_text("{}")
        full = find_bench_files(tmp_path, quick=False)
        assert [p.name for p in full] == [
            "BENCH_2026-03-01.json", "BENCH_2026-03-02.json",
        ]
        quick = find_bench_files(tmp_path, quick=True)
        assert [p.name for p in quick] == ["BENCH_2026-03-03-quick.json"]

    def test_find_baseline_excludes_todays_own_file(self, tmp_path):
        (tmp_path / "BENCH_2026-08-05.json").write_text("{}")
        (tmp_path / "BENCH_2026-08-06.json").write_text("{}")
        found = find_baseline(quick=False, out_dir=tmp_path, today="2026-08-06")
        assert found is not None and found.name == "BENCH_2026-08-05.json"

    def test_find_baseline_none_when_only_todays_file(self, tmp_path):
        (tmp_path / "BENCH_2026-08-06.json").write_text("{}")
        assert find_baseline(quick=False, out_dir=tmp_path, today="2026-08-06") is None

    def test_write_bench_uses_result_date_and_mode(self, tmp_path):
        doc = _doc(mode="quick", date="2026-02-03", hash=(1.0, "aa"))
        path = write_bench(doc, tmp_path)
        assert path.name == "BENCH_2026-02-03-quick.json"
        assert load_baseline(path) == doc


class TestCompareResults:
    def test_identical_runs_pass(self):
        doc = _doc(hash=(1.0, "aa"))
        failures, notes = compare_results(doc, doc)
        assert failures == [] and notes == []

    def test_regression_beyond_tolerance_fails(self):
        base = _doc(hash=(1.0, "aa"))
        cur = _doc(hash=(1.5, "aa"))
        failures, _ = compare_results(cur, base, tolerance=0.30)
        assert len(failures) == 1 and "hash" in failures[0]

    def test_growth_within_tolerance_passes(self):
        base = _doc(hash=(1.0, "aa"))
        cur = _doc(hash=(1.2, "aa"))
        failures, notes = compare_results(cur, base, tolerance=0.30)
        assert failures == [] and notes == []

    def test_improvement_is_a_note_not_a_failure(self):
        base = _doc(hash=(1.0, "aa"))
        cur = _doc(hash=(0.4, "aa"))
        failures, notes = compare_results(cur, base, tolerance=0.30)
        assert failures == []
        assert len(notes) == 1 and "faster" in notes[0]

    def test_fingerprint_mismatch_fails_even_when_faster(self):
        base = _doc(hash=(1.0, "aa"))
        cur = _doc(hash=(0.5, "bb"))
        failures, _ = compare_results(cur, base)
        assert any("fingerprint" in f for f in failures)

    def test_mode_mismatch_skips_comparison(self):
        base = _doc(mode="full", hash=(1.0, "aa"))
        cur = _doc(mode="quick", hash=(9.0, "bb"))
        failures, notes = compare_results(cur, base)
        assert failures == []
        assert any("mode" in n for n in notes)

    def test_profiled_baseline_skips_comparison(self):
        base = _doc(profiled=True, hash=(1.0, "aa"))
        cur = _doc(hash=(9.0, "bb"))
        failures, notes = compare_results(cur, base)
        assert failures == []
        assert any("cProfile" in n for n in notes)

    def test_new_workload_without_baseline_entry_is_a_note(self):
        base = _doc(hash=(1.0, "aa"))
        cur = _doc(hash=(1.0, "aa"), steer=(1.0, "cc"))
        failures, notes = compare_results(cur, base)
        assert failures == []
        assert any("steer" in n for n in notes)


class TestRunSuite:
    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_suite(quick=True, workload_names=["no_such_workload"])

    def test_quick_subset_produces_schema(self):
        doc = run_suite(quick=True, workload_names=["hash"], date="2026-01-01")
        assert doc["schema"] == 1
        assert doc["mode"] == "quick"
        assert doc["date"] == "2026-01-01"
        assert list(doc["workloads"]) == ["hash"]
        entry = doc["workloads"]["hash"]
        assert entry["ops"] > 0
        assert len(entry["fingerprint"]) == 8

    def test_fingerprints_are_deterministic_across_runs(self):
        first = run_suite(quick=True, workload_names=["hash", "steer"])
        second = run_suite(quick=True, workload_names=["hash", "steer"])
        for name in ("hash", "steer"):
            assert (first["workloads"][name]["fingerprint"]
                    == second["workloads"][name]["fingerprint"])

    def test_all_workloads_registered(self):
        assert set(WORKLOADS) == {
            "hash", "steer", "event_loop",
            "fig6a", "fig6a_scalar", "fig7a", "figr", "figs", "figc", "figp",
        }

    def test_spine_workloads_fingerprint_identically(self):
        """fig6a (batch spine) and fig6a_scalar must compute the same
        simulated results — the spine changes speed, never behaviour."""
        _, batch_fp = WORKLOADS["fig6a"](True, 1)
        _, scalar_fp = WORKLOADS["fig6a_scalar"](True, 1)
        assert batch_fp == scalar_fp


class TestTableLog:
    def test_first_write_truncates_then_appends(self, tmp_path):
        path = tmp_path / "tables.txt"
        path.write_text("stale content from a previous session\n")
        log = TableLog(path)
        log.add("table one", title="one")
        log.add("table two", title="two")
        text = path.read_text()
        assert "stale" not in text
        assert text == "table one\n\ntable two\n\n"

    def test_new_instance_truncates_again(self, tmp_path):
        path = tmp_path / "tables.txt"
        TableLog(path).add("first session")
        TableLog(path).add("second session")
        assert path.read_text() == "second session\n\n"


class TestCli:
    def test_first_run_writes_baseline_and_exits_zero(self, tmp_path, capsys):
        code = perf_main(["--quick", "--workloads", "hash", "--out", str(tmp_path)])
        assert code == 0
        written = find_bench_files(tmp_path, quick=True)
        assert len(written) == 1
        out = capsys.readouterr().out
        assert "first baseline" in out

    def test_fingerprint_mismatch_exits_nonzero(self, tmp_path, capsys):
        doc = run_suite(quick=True, workload_names=["hash"])
        doc["workloads"]["hash"]["fingerprint"] = "deadbeef"
        baseline = tmp_path / "tampered.json"
        baseline.write_text(json.dumps(doc))
        code = perf_main([
            "--quick", "--workloads", "hash", "--no-write",
            "--out", str(tmp_path), "--baseline", str(baseline),
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_matching_baseline_exits_zero(self, tmp_path, capsys):
        doc = run_suite(quick=True, workload_names=["hash"])
        baseline = tmp_path / "good.json"
        baseline.write_text(json.dumps(doc))
        code = perf_main([
            "--quick", "--workloads", "hash", "--no-write",
            "--out", str(tmp_path), "--baseline", str(baseline),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out
