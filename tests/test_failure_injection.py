"""Failure injection: bounded resources must degrade, not corrupt."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.core.flow_state import FlowTableFullError
from repro.net import ACK, SYN, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows
from repro.trafficgen.iperf import TcpTestbed


class TestRingOverflow:
    def test_tiny_rings_drop_but_do_not_wedge(self):
        """Connection packets beyond ring capacity are dropped and
        counted; regular traffic keeps flowing."""
        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(busy_cycles=10000),
            MiddleboxConfig(mode="sprayer", num_cores=8, ring_capacity=1),
        )
        out = []
        engine.set_egress(out.append)
        rng = random.Random(3)
        # Burst many SYNs at one instant: designated cores' rings overflow.
        for flow in random_tcp_flows(64, rng):
            engine.receive(
                make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(until=20 * MILLISECOND)
        assert engine.stats.ring_drops > 0
        assert len(out) > 0  # the surviving SYNs were still processed
        assert len(out) + engine.stats.ring_drops == 64

    def test_nic_queue_overflow_counted_not_fatal(self):
        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(busy_cycles=10000),
            MiddleboxConfig(mode="rss", num_cores=8, queue_capacity=4),
        )
        out = []
        engine.set_egress(out.append)
        rng = random.Random(5)
        flow = random_tcp_flows(1, rng)[0]
        for seq in range(100):
            engine.receive(
                make_tcp_packet(flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(until=20 * MILLISECOND)
        assert engine.nic.stats.rx_dropped_queue_full > 0
        assert len(out) + engine.nic.stats.rx_dropped_queue_full == 100


class TestFlowTableExhaustion:
    def test_full_flow_table_raises(self):
        """Per-core table capacity is a hard limit; exceeding it is a
        programming/provisioning error and surfaces loudly."""
        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(busy_cycles=0),
            MiddleboxConfig(mode="sprayer", num_cores=2, flow_table_capacity=2),
        )
        engine.set_egress(lambda p: None)
        rng = random.Random(7)
        with pytest.raises(FlowTableFullError):
            for flow in random_tcp_flows(64, rng):
                engine.receive(
                    make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)),
                    sim.now,
                )
                sim.run(until=sim.now + MILLISECOND)


class TestFdCapUnderTcp:
    def test_severe_fd_cap_still_carries_tcp(self):
        """An artificially tight Flow Director cap throttles but does
        not break the closed loop (TCP adapts to the drops)."""
        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(busy_cycles=0),
            MiddleboxConfig(mode="sprayer", num_cores=8,
                            flow_director_pps_cap=2e5),
        )
        testbed = TcpTestbed(sim, engine, num_flows=1, rng=random.Random(9))
        result = testbed.run(duration=60 * MILLISECOND, warmup=30 * MILLISECOND)
        # The policer drops indiscriminately (a hostile regime for TCP:
        # it behaves like heavy random loss), but the connection must
        # keep making forward progress rather than deadlocking.
        assert 0 < result.total_goodput_gbps < 2.5
        assert testbed.senders[0].cum_acked > 0
        assert engine.nic.stats.rx_dropped_fd_cap > 0


class TestEgressReorderingMeasurement:
    def test_rss_egress_in_order_sprayer_not(self):
        def run(mode):
            sim = Simulator()
            engine = MiddleboxEngine(
                sim, SyntheticNf(busy_cycles=5000),
                MiddleboxConfig(mode=mode, num_cores=8),
            )
            testbed = TcpTestbed(sim, engine, num_flows=1, rng=random.Random(4))
            return testbed.run(duration=40 * MILLISECOND, warmup=20 * MILLISECOND)

        rss = run("rss")
        sprayer = run("sprayer")
        assert rss.egress_reordering_rate == 0.0
        assert sprayer.egress_reordering_rate > 0.0
        assert sprayer.egress_reordering_extent >= 1
