"""Tests for the static lint engine (``repro.lint``).

Every rule SPR001–SPR006 gets a fire-on-bad / quiet-on-good pair, the
suppression comment grammar is exercised at line and file level, the
CLI contract (exit codes, JSON shape) is pinned, and — the point of the
whole exercise — the repo's own ``src`` tree must lint clean.
"""

import json
import textwrap

import pytest

from repro.lint import LintEngine, RULES, Violation, iter_python_files
from repro.lint.__main__ import main
from repro.lint.engine import PARSE_ERROR

IN_REPRO = "src/repro/nfs/example.py"  # path-scoped rules treat this as repo source
IN_CORE = "src/repro/core/example.py"  # ... except the flow-state home itself
OUTSIDE = "tools/example.py"  # not under repro: purity rules don't apply


def lint(source: str, path: str = IN_REPRO, **engine_kwargs):
    return LintEngine(**engine_kwargs).lint_source(textwrap.dedent(source), path)


def codes(violations):
    return [violation.rule for violation in violations]


class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert sorted(RULES) == [
            "SPR001", "SPR002", "SPR003", "SPR004", "SPR005", "SPR006",
            "SPR007",
        ]

    def test_rules_carry_title_and_rationale(self):
        for rule in RULES.values():
            assert rule.title and rule.rationale


class TestSpr001FlowStateEncapsulation:
    def test_fires_on_table_entries_access(self):
        bad = """
        def migrate(engine):
            return engine.flow_state.tables[0]
        """
        assert codes(lint(bad)) == ["SPR001"]

    def test_fires_on_entries_of_flow_table(self):
        bad = """
        def peek(table):
            flow_table = table
            return list(flow_table.entries)
        """
        assert codes(lint(bad)) == ["SPR001"]

    def test_quiet_on_sanctioned_control_plane_api(self):
        good = """
        def migrate(engine, flow, target):
            entry = engine.flow_state.evict(flow)
            target.flow_state.adopt(flow, entry)
            return engine.flow_state.entries_snapshot()
        """
        assert lint(good) == []

    def test_exempt_inside_repro_core(self):
        bad = """
        def internals(flow_state):
            return flow_state.tables
        """
        assert lint(bad, path=IN_CORE) == []

    def test_unrelated_entries_attribute_is_fine(self):
        good = """
        def rows(report):
            return report.entries
        """
        assert lint(good) == []

    def test_fires_on_replica_table_access(self):
        bad = """
        def peek(engine, core_id):
            return engine.flow_state.replicas[core_id]
        """
        assert codes(lint(bad)) == ["SPR001"]

    def test_quiet_on_replica_snapshot_accessor(self):
        good = """
        def compare(engine, core_id):
            return engine.flow_state.replica_snapshot(core_id)
        """
        assert lint(good) == []


class TestSpr002SimulationPurity:
    @pytest.mark.parametrize(
        "call",
        [
            "random.random()",
            "random.randint(0, 9)",
            "random.shuffle(items)",
            "time.time()",
            "time.monotonic()",
            "time.time_ns()",
            "datetime.datetime.now()",
            "datetime.date.today()",
            "os.urandom(16)",
        ],
    )
    def test_fires_on_wall_clock_and_unseeded_entropy(self, call):
        bad = f"""
        import datetime
        import os
        import random
        import time

        def f(items):
            return {call}
        """
        assert codes(lint(bad)) == ["SPR002"]

    def test_fires_through_module_alias(self):
        bad = """
        import time as clock

        def f():
            return clock.time()
        """
        assert codes(lint(bad)) == ["SPR002"]

    def test_fires_on_from_imports(self):
        bad = """
        from random import randint
        from time import monotonic
        """
        assert codes(lint(bad)) == ["SPR002", "SPR002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nrng = random.Random(7)",  # the sanctioned class
            "from random import Random",
            "import time\nt0 = time.perf_counter()",  # host-side timing
            "from repro.sim.rng import RngStreams",
        ],
    )
    def test_quiet_on_sanctioned_primitives(self, snippet):
        assert lint(snippet) == []

    def test_does_not_apply_outside_repro(self):
        assert lint("import time\nt = time.time()", path=OUTSIDE) == []

    def test_method_named_like_banned_call_is_fine(self):
        good = """
        def f(recorder):
            return recorder.time()
        """
        assert lint(good) == []


class TestSpr003OrderedIteration:
    @pytest.mark.parametrize(
        "loop",
        [
            "for x in {1, 2, 3}: use(x)",
            "for x in set(items): use(x)",
            "for x in frozenset(items): use(x)",
            "for k in mapping.keys(): use(k)",
            "out = [use(x) for x in set(items)]",
            "out = {use(k) for k in mapping.keys()}",
        ],
    )
    def test_fires_on_unordered_iteration(self, loop):
        assert codes(lint(loop)) == ["SPR003"]

    @pytest.mark.parametrize(
        "loop",
        [
            "for x in sorted({1, 2, 3}): use(x)",
            "for x in sorted(set(items)): use(x)",
            "for k in sorted(mapping): use(k)",
            "for k in mapping: use(k)",  # dicts iterate in insertion order
            "for x in items: use(x)",
        ],
    )
    def test_quiet_on_ordered_iteration(self, loop):
        assert lint(loop) == []


class TestSpr004SteeringConsultsDesignated:
    def test_fires_on_flag_handling_without_hash(self):
        bad = """
        class BrokenPolicy(SteeringPolicy):
            def steer(self, packet):
                if packet.flags & SYN:
                    return 0  # SYNs pinned to core 0: not the designated core
                return packet.checksum % self.num_cores
        """
        assert codes(lint(bad)) == ["SPR004"]

    def test_quiet_when_hash_is_consulted(self):
        good = """
        class GoodPolicy(SteeringPolicy):
            def steer(self, packet):
                if packet.flags & SYN:
                    return self.designated_core(packet.five_tuple)
                return packet.checksum % self.num_cores
        """
        assert lint(good) == []

    def test_quiet_on_flag_blind_policy(self):
        good = """
        class SprayPolicy(SteeringPolicy):
            def steer(self, packet):
                return packet.checksum % self.num_cores
        """
        assert lint(good) == []

    def test_ignores_classes_that_are_not_policies(self):
        good = """
        class TcpParser:
            def parse(self, packet):
                return packet.flags & (SYN | FIN | RST)
        """
        assert lint(good) == []

    def test_quiet_when_replication_log_is_the_route(self):
        good = """
        class ReplicatingPolicy(SteeringPolicy):
            replicates_state = True

            def steer(self, packet):
                if packet.flags & SYN:
                    self.replication.observe(packet)
                return packet.checksum % self.num_cores
        """
        assert lint(good) == []

    def test_replication_route_requires_actual_references(self):
        bad = """
        class StillBrokenPolicy(SteeringPolicy):
            def steer(self, packet):
                # A comment mentioning replication does not count.
                if packet.flags & SYN:
                    return 0
                return packet.checksum % self.num_cores
        """
        assert codes(lint(bad)) == ["SPR004"]


class TestSpr005SilentExceptionSwallow:
    @pytest.mark.parametrize("body", ["pass", "..."])
    def test_fires_on_swallowed_exception(self, body):
        bad = f"""
        def f(items):
            try:
                work()
            except ValueError:
                {body}
        """
        assert codes(lint(bad)) == ["SPR005"]

    def test_fires_on_bare_continue_handler(self):
        bad = """
        def f(items):
            for item in items:
                try:
                    work(item)
                except ValueError:
                    continue
        """
        assert codes(lint(bad)) == ["SPR005"]

    def test_quiet_when_handled_or_counted(self):
        good = """
        def f(counters):
            try:
                work()
            except ValueError:
                counters.inc("nf.drops")
        """
        assert lint(good) == []

    def test_quiet_on_reraise(self):
        good = """
        def f():
            try:
                work()
            except ValueError:
                raise RuntimeError("context")
        """
        assert lint(good) == []

    def test_applies_outside_repro_too(self):
        bad = """
        try:
            work()
        except Exception:
            pass
        """
        assert codes(lint(bad, path=OUTSIDE)) == ["SPR005"]


IN_BATCH_PATH = "src/repro/nic/link.py"  # a module of the SoA batch spine


class TestSpr006ColumnarBatchPath:
    def test_fires_on_materialize_all_for_loop(self):
        bad = """
        def deliver(batch, sink):
            for packet in batch.materialize_all():
                sink(packet)
        """
        assert codes(lint(bad, path=IN_BATCH_PATH)) == ["SPR006"]

    def test_fires_on_materialize_all_comprehension(self):
        bad = """
        def frame_bytes(batch):
            return [p.frame_len for p in batch.materialize_all()]
        """
        assert codes(lint(bad, path=IN_BATCH_PATH)) == ["SPR006"]

    def test_quiet_on_columnar_loop(self):
        good = """
        def frame_bytes(batch):
            return sum(batch.frame_lens)
        """
        assert lint(good, path=IN_BATCH_PATH) == []

    def test_quiet_on_lazy_per_row_materialize(self):
        # The sanctioned settlement idiom: one accepted row at a time.
        good = """
        def settle(batch, accept):
            for i in range(len(batch.flows)):
                accept(batch.materialize(i))
        """
        assert lint(good, path=IN_BATCH_PATH) == []

    def test_quiet_outside_the_batch_path(self):
        # Per-packet fallbacks are the *norm* everywhere else.
        good = """
        def deliver(batch, sink):
            for packet in batch.materialize_all():
                sink(packet)
        """
        assert lint(good, path=IN_REPRO) == []
        assert lint(good, path=OUTSIDE) == []

    def test_suppression_marks_audited_fallback(self):
        source = """
        def deliver(batch, sink):
            for packet in batch.materialize_all():  # repro-lint: disable=SPR006
                sink(packet)
        """
        assert lint(source, path=IN_BATCH_PATH) == []


class TestSuppressions:
    def test_trailing_comment_suppresses_that_line_only(self):
        source = """
        import time

        a = time.time()  # repro-lint: disable=SPR002
        b = time.time()
        """
        violations = lint(source)
        assert codes(violations) == ["SPR002"]
        assert violations[0].line == 5  # only the unsuppressed call

    def test_own_line_comment_suppresses_whole_file(self):
        source = """
        # repro-lint: disable=SPR002
        import time

        a = time.time()
        b = time.monotonic()
        """
        assert lint(source) == []

    def test_file_level_disable_all(self):
        source = """
        # repro-lint: disable=all
        import time

        a = time.time()

        for x in set(items):
            use(x)
        """
        assert lint(source) == []

    def test_suppression_is_per_rule(self):
        source = """
        import time

        a = time.time()  # repro-lint: disable=SPR003
        """
        assert codes(lint(source)) == ["SPR002"]

    def test_multiple_codes_in_one_directive(self):
        source = """
        # repro-lint: disable=SPR002, SPR003
        import time

        a = time.time()
        for x in set(items):
            use(x)
        """
        assert lint(source) == []


class TestEngine:
    def test_parse_error_reported_not_raised(self):
        violations = lint("def broken(:\n")
        assert codes(violations) == [PARSE_ERROR]

    def test_select_restricts_rules(self):
        source = """
        import time

        a = time.time()
        for x in set(items):
            use(x)
        """
        assert codes(lint(source, select=["SPR003"])) == ["SPR003"]
        assert codes(lint(source, ignore=["SPR003"])) == ["SPR002"]

    def test_unknown_codes_rejected(self):
        with pytest.raises(ValueError):
            LintEngine(select=["SPR999"])
        with pytest.raises(ValueError):
            LintEngine(ignore=["NOPE"])

    def test_violations_sorted_and_formatted(self):
        source = """
        import time

        b = time.monotonic()
        a = time.time()
        """
        violations = lint(source)
        assert [violation.line for violation in violations] == [4, 5]
        formatted = violations[0].format()
        assert formatted.startswith(f"{IN_REPRO}:4:")
        assert "SPR002" in formatted

    def test_iter_python_files_deduplicates_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("y = 2\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "c.py").write_text("z = 3\n")
        files = list(iter_python_files([str(tmp_path), str(sub / "c.py")]))
        assert [f.name for f in files] == ["a.py", "b.py", "c.py"]


class TestCli:
    def make_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "nfs"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text("import time\nt = time.time()\n")
        (pkg / "clean.py").write_text("x = 1\n")
        return tmp_path

    def test_exit_one_and_report_on_violations(self, tmp_path, capsys):
        root = self.make_tree(tmp_path)
        assert main([str(root / "src")]) == 1
        out = capsys.readouterr().out
        assert "SPR002" in out
        assert "1 violation in 2 files checked" in out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        root = self.make_tree(tmp_path)
        clean_only = root / "src" / "repro" / "nfs" / "clean.py"
        assert main([str(clean_only)]) == 0
        assert "0 violations in 1 files checked" in capsys.readouterr().out

    def test_json_output_shape(self, tmp_path, capsys):
        root = self.make_tree(tmp_path)
        assert main([str(root / "src"), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["files_checked"] == 2
        assert document["rules"] == sorted(RULES)
        (violation,) = [
            v for v in document["violations"] if v["rule"] == "SPR002"
        ]
        assert violation["line"] == 2
        assert violation["path"].endswith("dirty.py")

    def test_select_ignore_flags_and_usage_errors(self, tmp_path, capsys):
        root = self.make_tree(tmp_path)
        assert main([str(root / "src"), "--ignore", "SPR002"]) == 0
        assert main([str(root / "src"), "--select", "SPR002"]) == 1
        capsys.readouterr()
        assert main([str(root / "src"), "--select", "SPR999"]) == 2
        assert "SPR999" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out


class TestRepoIsClean:
    """The flagship acceptance check: the repo lints clean, so the lint
    gate in CI starts from a zero-violation baseline."""

    def test_src_tree_has_zero_violations(self):
        engine = LintEngine()
        violations = engine.lint_paths(["src"])
        assert violations == [], "\n" + engine.report_text(violations)
        assert engine.files_checked > 100


NFS_PATH = "src/repro/nfs/firewall.py"  # SPR007 keys on registered NF modules

#: A firewall matching its declared profile: per-flow read per packet,
#: per-flow read-write at connection events, no global state.
CONFORMING_FIREWALL = """
from repro.core.nf import NetworkFunction


class FirewallNf(NetworkFunction):
    name = "firewall"

    def connection_packets(self, packets, ctx):
        for packet in packets:
            ctx.insert_local_flow(packet.five_tuple, {"verdict": "permit"})

    def regular_packets(self, packets, ctx):
        for packet in packets:
            ctx.get_flow(packet.five_tuple)
"""

#: Same class, but with an undeclared per-packet global write.
DIVERGENT_FIREWALL = """
from repro.core.nf import NetworkFunction


class FirewallNf(NetworkFunction):
    name = "firewall"

    def connection_packets(self, packets, ctx):
        for packet in packets:
            ctx.insert_local_flow(packet.five_tuple, {"verdict": "permit"})

    def regular_packets(self, packets, ctx):
        for packet in packets:
            ctx.get_flow(packet.five_tuple)
            ctx.write_global("hits", packet.five_tuple, 1)
"""


class TestSpr007DeclaredProfileMatchesInferred:
    def test_fires_on_undeclared_global_write(self):
        violations = lint(DIVERGENT_FIREWALL, path=NFS_PATH)
        assert codes(violations) == ["SPR007"]
        (violation,) = violations
        assert "global_packet" in violation.message
        assert "firewall" in violation.message

    def test_quiet_when_inferred_matches_declared(self):
        assert lint(CONFORMING_FIREWALL, path=NFS_PATH) == []

    def test_suppressible_at_class_line(self):
        suppressed = DIVERGENT_FIREWALL.replace(
            "class FirewallNf(NetworkFunction):",
            "class FirewallNf(NetworkFunction):  # repro-lint: disable=SPR007",
        )
        assert lint(suppressed, path=NFS_PATH) == []

    def test_does_not_apply_to_unregistered_modules(self):
        # A module no NfProfile points at has nothing to diverge from.
        assert lint(DIVERGENT_FIREWALL, path="src/repro/nfs/scratch.py") == []

    def test_repo_nf_sources_carry_no_unsuppressed_mismatch(self):
        engine = LintEngine(select={"SPR007"})
        violations = engine.lint_paths(["src/repro/nfs"])
        assert violations == [], "\n" + engine.report_text(violations)


class TestProfilesCli:
    def test_profiles_text_table(self, capsys):
        assert main(["--profiles", "src/repro/nfs"]) == 0
        out = capsys.readouterr().out
        for name in ("FirewallNf", "NatNf", "DpiNf", "SyntheticNf"):
            assert name in out

    def test_profiles_json_shape(self, capsys):
        assert main(["--profiles", "--json", "src/repro/nfs"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["errors"] == []
        by_class = {p["nf_class"]: p for p in document["profiles"]}
        assert by_class["FirewallNf"]["summary"]["per_flow_event"] == "RW"
        assert by_class["DpiNf"]["summary"]["global_packet"] == "RW"
        assert by_class["OooDpiNf"]["summary"]["designated_only"] is True

    def test_profiles_reports_unparsable_files(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "nfs"
        target.mkdir(parents=True)
        (target / "broken.py").write_text("def broken(:\n")
        assert main(["--profiles", str(target)]) == 0
        assert "skipped (unparsable)" in capsys.readouterr().out
