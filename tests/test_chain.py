"""Tests for NF service chains."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.core.chain import NfChain, ScopedContext, _ScopedFlowKey
from repro.core.nf import NetworkFunction
from repro.net import ACK, FIN, SYN, FiveTuple, make_tcp_packet
from repro.nfs import FirewallNf, NatNf, TrafficMonitorNf
from repro.nfs.firewall import AclRule
from repro.sim import MILLISECOND, Simulator


def flow(i: int = 1, dst_port: int = 80) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, dst_port, 6)


def build_chain_engine(stages, mode="sprayer"):
    sim = Simulator()
    chain = NfChain(stages)
    engine = MiddleboxEngine(sim, chain, MiddleboxConfig(mode=mode, num_cores=8))
    out = []
    engine.set_egress(out.append)
    return sim, chain, engine, out


def drive(sim, engine, f, data=8, rng=None):
    rng = rng or random.Random(5)
    engine.receive(make_tcp_packet(f, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now)
    sim.run(until=sim.now + MILLISECOND)
    for seq in range(data):
        engine.receive(
            make_tcp_packet(f, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
            sim.now,
        )
    sim.run(until=sim.now + 5 * MILLISECOND)


class TestScopedKeys:
    def test_scoped_keys_are_distinct_per_scope(self):
        key_a = _ScopedFlowKey("nat", flow())
        key_b = _ScopedFlowKey("firewall", flow())
        assert key_a != key_b
        assert hash(key_a) != hash(key_b) or key_a != key_b

    def test_scoped_key_preserves_designation(self):
        """Scoping tags the key but the designated core follows the tuple."""
        sim, chain, engine, out = build_chain_engine(
            [FirewallNf(acl=[AclRule(action="permit")])]
        )
        f = flow()
        assert engine.designated_core(_ScopedFlowKey("x", f)) == engine.designated_core(f)

    def test_scoped_key_reversal(self):
        key = _ScopedFlowKey("s", flow())
        assert key.reversed().flow == flow().reversed()
        assert key.reversed().scope == "s"


@pytest.mark.parametrize("mode", ["rss", "sprayer"])
class TestChainExecution:
    def test_firewall_nat_monitor_chain(self, mode):
        nat = NatNf(external_ip=0x0B000001)
        firewall = FirewallNf(acl=[AclRule(action="permit", dst_port=80)])
        monitor = TrafficMonitorNf()
        sim, chain, engine, out = build_chain_engine([firewall, nat, monitor], mode)
        drive(sim, engine, flow(), data=8)
        # The firewall admitted, the NAT translated, the monitor counted.
        assert firewall.connections_admitted == 1
        assert nat.translations_active == 1
        assert monitor.connections_opened == 1
        assert len(out) == 9
        assert out[-1].five_tuple.src_ip == 0x0B000001  # translated

    def test_stage_drop_stops_chain(self, mode):
        firewall = FirewallNf(acl=[])  # default deny: drops every SYN
        nat = NatNf(external_ip=0x0B000001)
        sim, chain, engine, out = build_chain_engine([firewall, nat], mode)
        drive(sim, engine, flow(), data=4)
        assert out == []
        assert nat.translations_active == 0  # the NAT never saw the SYN
        assert chain.drops_by_stage[0] == 5
        assert chain.drops_by_stage[1] == 0


class TestChainStateIsolation:
    def test_two_stateful_stages_keep_separate_entries(self):
        firewall = FirewallNf(acl=[AclRule(action="permit")])
        monitor = TrafficMonitorNf()
        sim, chain, engine, out = build_chain_engine([firewall, monitor])
        drive(sim, engine, flow(), data=4)
        # Both stages inserted entries for both directions: 4 total.
        assert engine.flow_state.total_entries() == 4

    def test_chain_name_and_statelessness(self):
        from repro.nfs import RedundancyEliminationNf

        chain = NfChain([RedundancyEliminationNf()])
        assert chain.stateless
        mixed = NfChain([RedundancyEliminationNf(), TrafficMonitorNf()])
        assert not mixed.stateless
        assert "redundancy_elimination" in mixed.name

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            NfChain([])

    def test_stage_contexts_expose_stage_scoped_storage(self):
        monitor = TrafficMonitorNf()
        firewall = FirewallNf(acl=[AclRule(action="permit")])
        sim, chain, engine, out = build_chain_engine([firewall, monitor])
        drive(sim, engine, flow(), data=6)
        scoped = chain.stage_contexts(engine.contexts, monitor)
        totals = monitor.aggregate(scoped)
        assert totals["packets"] == 7  # SYN + 6 data

    def test_stage_contexts_rejects_foreign_nf(self):
        monitor = TrafficMonitorNf()
        sim, chain, engine, out = build_chain_engine([monitor])
        with pytest.raises(ValueError):
            chain.stage_contexts(engine.contexts, TrafficMonitorNf())

    def test_teardown_through_directional_chain(self):
        """Return traffic traverses [firewall, nat] in reverse order, so
        the NAT un-translates before the firewall matches state."""
        from repro.trafficgen.flows import is_toward_server

        firewall = FirewallNf(acl=[AclRule(action="permit")])
        nat = NatNf(external_ip=0x0B000001)
        sim = Simulator()
        chain = NfChain(
            [firewall, nat],
            direction_fn=lambda p: is_toward_server(p.five_tuple.dst_ip),
        )
        engine = MiddleboxEngine(sim, chain, MiddleboxConfig(mode="sprayer", num_cores=8))
        out = []
        engine.set_egress(out.append)
        f = flow()
        rng = random.Random(5)
        drive(sim, engine, f, data=2, rng=rng)
        translated = out[0].five_tuple
        # Return data: arrives addressed to the external mapping, is
        # un-translated by the NAT, then passes the firewall.
        engine.receive(
            make_tcp_packet(translated.reversed(), flags=ACK,
                            tcp_checksum=rng.getrandbits(16)),
            sim.now,
        )
        sim.run(until=sim.now + 2 * MILLISECOND)
        assert out[-1].five_tuple == f.reversed()
        # Close from both sides.
        engine.receive(make_tcp_packet(f, flags=FIN | ACK, tcp_checksum=rng.getrandbits(16)), sim.now)
        sim.run(until=sim.now + 2 * MILLISECOND)
        engine.receive(
            make_tcp_packet(translated.reversed(), flags=FIN | ACK,
                            tcp_checksum=rng.getrandbits(16)),
            sim.now,
        )
        sim.run(until=sim.now + 5 * MILLISECOND)
        assert nat.translations_active == 0
