"""Unit/integration tests for the stateful firewall."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, FIN, RST, SYN, FiveTuple, ip_to_int, make_tcp_packet
from repro.nfs import AclRule, FirewallNf
from repro.sim import MILLISECOND, Simulator


def flow(i: int = 1, dst_port: int = 80) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, dst_port, 6)


class TestAclRule:
    def test_prefix_match(self):
        rule = AclRule(action="permit", src_prefix=(ip_to_int("10.0.0.0"), 16))
        assert rule.matches(flow())
        outsider = flow()._replace(src_ip=ip_to_int("192.168.0.1"))
        assert not rule.matches(outsider)

    def test_zero_prefix_matches_everything(self):
        rule = AclRule(action="deny")
        assert rule.matches(flow())

    def test_port_match(self):
        rule = AclRule(action="permit", dst_port=80)
        assert rule.matches(flow(dst_port=80))
        assert not rule.matches(flow(dst_port=443))

    def test_validation(self):
        with pytest.raises(ValueError):
            AclRule(action="maybe")
        with pytest.raises(ValueError):
            AclRule(action="permit", src_prefix=(0, 40))


class _FirewallHarness:
    def __init__(self, acl, mode="sprayer", default_action="deny"):
        self.sim = Simulator()
        self.fw = FirewallNf(acl=acl, default_action=default_action)
        self.engine = MiddleboxEngine(self.sim, self.fw, MiddleboxConfig(mode=mode))
        self.out = []
        self.engine.set_egress(self.out.append)
        self.rng = random.Random(5)

    def send(self, five_tuple, flags=ACK, seq=0):
        packet = make_tcp_packet(
            five_tuple, flags=flags, seq=seq, tcp_checksum=self.rng.getrandbits(16)
        )
        self.engine.receive(packet, self.sim.now)
        self.sim.run(until=self.sim.now + MILLISECOND)
        return packet


PERMIT_WEB = [AclRule(action="permit", dst_port=80)]


@pytest.mark.parametrize("mode", ["rss", "sprayer"])
class TestFirewallPolicy:
    def test_permitted_connection_establishes(self, mode):
        harness = _FirewallHarness(PERMIT_WEB, mode)
        harness.send(flow(), flags=SYN)
        assert len(harness.out) == 1
        assert harness.fw.connections_admitted == 1

    def test_denied_syn_dropped(self, mode):
        harness = _FirewallHarness(PERMIT_WEB, mode)
        harness.send(flow(dst_port=23), flags=SYN)  # telnet: no rule, default deny
        assert harness.out == []
        assert harness.fw.connections_refused == 1

    def test_data_of_established_flow_passes_both_directions(self, mode):
        harness = _FirewallHarness(PERMIT_WEB, mode)
        harness.send(flow(), flags=SYN)
        harness.send(flow(), flags=ACK, seq=1)
        harness.send(flow().reversed(), flags=ACK)
        assert len(harness.out) == 3

    def test_data_without_connection_dropped(self, mode):
        harness = _FirewallHarness(PERMIT_WEB, mode)
        harness.send(flow(), flags=ACK)
        assert harness.out == []
        assert harness.fw.drops_no_state == 1

    def test_first_matching_rule_wins(self, mode):
        acl = [
            AclRule(action="deny", src_prefix=(0x0A000001, 32)),
            AclRule(action="permit", dst_port=80),
        ]
        harness = _FirewallHarness(acl, mode)
        harness.send(flow(1), flags=SYN)  # src 10.0.0.1+1... flow(1) src=0x0A000001
        assert harness.fw.connections_refused == 1
        harness.send(flow(2), flags=SYN)
        assert harness.fw.connections_admitted == 1


class TestFirewallLifecycle:
    def test_rst_removes_state(self):
        harness = _FirewallHarness(PERMIT_WEB)
        harness.send(flow(), flags=SYN)
        assert harness.engine.flow_state.total_entries() == 2
        harness.send(flow(), flags=RST)
        assert harness.engine.flow_state.total_entries() == 0

    def test_full_fin_handshake_removes_state(self):
        harness = _FirewallHarness(PERMIT_WEB)
        harness.send(flow(), flags=SYN)
        harness.send(flow(), flags=FIN | ACK)
        assert harness.engine.flow_state.total_entries() == 2  # half closed
        harness.send(flow().reversed(), flags=FIN | ACK)
        assert harness.engine.flow_state.total_entries() == 0

    def test_syn_ack_without_connection_dropped(self):
        harness = _FirewallHarness(PERMIT_WEB)
        harness.send(flow().reversed(), flags=SYN | ACK)
        assert harness.out == []

    def test_syn_retransmission_not_double_admitted(self):
        harness = _FirewallHarness(PERMIT_WEB)
        harness.send(flow(), flags=SYN)
        harness.send(flow(), flags=SYN)
        assert harness.fw.connections_admitted == 1

    def test_default_permit_mode(self):
        harness = _FirewallHarness([], default_action="permit")
        harness.send(flow(dst_port=2323), flags=SYN)
        assert harness.fw.connections_admitted == 1

    def test_bad_default_action(self):
        with pytest.raises(ValueError):
            FirewallNf(default_action="whatever")
