"""The declarative scenario/sweep layer (repro.experiments.spec).

The load-bearing property is execution-order independence: a point's
seed (and therefore its simulated result) is a function of (base seed,
axis value) only, so reordering or subsetting a sweep — or running it
on a process pool that finishes points in any order — can never change
a row. Hypothesis drives that property plus the shared aggregation's
equivalence to the statistics module.
"""

import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.runner import SweepRunner
from repro.experiments.spec import (
    CAPACITY_DURATION,
    CAPACITY_WARMUP,
    PointResult,
    Scenario,
    Series,
    Sweep,
    aggregate_samples,
    mode_series,
    register_kind,
    run_scenario,
)


def make_sweep(values, seeds, seed_fn=None, agg="mean_std"):
    return Sweep(
        name="t",
        kind="open_loop",
        axis="cycles",
        axis_field="nf_cycles",
        values=values,
        modes=("rss", "sprayer"),
        seeds=seeds,
        seed_fn=seed_fn,
        metric="rate_mpps",
        unit="mpps",
        agg=agg,
    )


class TestScenario:
    def test_make_routes_unknown_kwargs_to_params(self):
        s = Scenario.make("open_loop", mode="rss", batch_size=4, queue_capacity=512)
        assert s.mode == "rss"
        assert s.extras == {"batch_size": 4, "queue_capacity": 512}

    def test_with_merges_params_and_fields(self):
        s = Scenario.make("open_loop", batch_size=4)
        t = s.with_(seed=7, batch_size=8, burst=2)
        assert (t.seed, t.burst, t.extras["batch_size"]) == (7, 2, 8)
        assert s.extras["batch_size"] == 4  # original untouched

    def test_scenarios_are_hashable_and_picklable(self):
        import pickle

        s = Scenario.make("tcp", nf_cycles=100, cc_name="reno")
        assert pickle.loads(pickle.dumps(s)) == s
        assert len({s, s.with_(seed=2)}) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            run_scenario(Scenario.make("no_such_kind"))


class TestSeedDerivation:
    @given(
        values=st.lists(st.integers(0, 10**6), min_size=1, max_size=8, unique=True),
        seeds=st.lists(st.integers(0, 10**6), min_size=1, max_size=4, unique=True),
        data=st.data(),
    )
    def test_seeds_stable_under_reordering_and_subsetting(self, values, seeds, data):
        """The (axis value, series, base seed) -> point seed mapping of a
        shuffled/subset sweep agrees with the full sweep's exactly."""
        seed_fn = data.draw(
            st.sampled_from([None, lambda s, v: s + v, lambda s, v: s * 1000 + v])
        )
        full = make_sweep(tuple(values), tuple(seeds), seed_fn=seed_fn)

        def seed_map(sweep):
            return {
                (sc.nf_cycles, sc.mode, base): sc.seed
                for sc, base in zip(
                    sweep.scenarios(),
                    [b for _ in sweep.values for _ in sweep.series for b in sweep.seeds],
                )
            }

        reference = seed_map(full)
        shuffled = data.draw(st.permutations(values))
        subset_end = data.draw(st.integers(1, len(shuffled)))
        subset = make_sweep(tuple(shuffled[:subset_end]), tuple(seeds), seed_fn=seed_fn)
        for key, seed in seed_map(subset).items():
            assert reference[key] == seed

    def test_points_enumerate_in_canonical_order(self):
        sweep = make_sweep((10, 20), (1, 2))
        got = [(s.nf_cycles, s.mode, s.seed) for s in sweep.scenarios()]
        assert got == [
            (10, "rss", 1), (10, "rss", 2), (10, "sprayer", 1), (10, "sprayer", 2),
            (20, "rss", 1), (20, "rss", 2), (20, "sprayer", 1), (20, "sprayer", 2),
        ]
        assert len(sweep) == 8


class TestAggregation:
    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=10))
    def test_mean_std_matches_statistics_module(self, samples):
        row = {}
        aggregate_samples(row, "m", "mpps", samples)
        assert row["m_mpps"] == statistics.fmean(samples)
        if len(samples) > 1:
            assert row["m_std"] == statistics.stdev(samples)
        else:
            assert "m_std" not in row

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=10))
    def test_mean_min_max(self, samples):
        row = {}
        aggregate_samples(row, "m", "jain", samples, agg="mean_min_max")
        assert row["m_jain"] == statistics.fmean(samples)
        assert row["m_min"] == min(samples)
        assert row["m_max"] == max(samples)

    def test_empty_unit_uses_bare_label(self):
        row = {}
        aggregate_samples(row, "mpps_trivial_nf", "", [1.0])
        assert row == {"mpps_trivial_nf": 1.0}

    def test_unknown_agg_rejected(self):
        with pytest.raises(ValueError):
            aggregate_samples({}, "m", "u", [1.0], agg="median")

    def test_rows_fold_in_canonical_order(self):
        sweep = make_sweep((10, 20), (1, 2))
        results = [
            PointResult(scenario=s, values={"rate_mpps": float(i)})
            for i, s in enumerate(sweep.scenarios())
        ]
        rows = sweep.rows(results)
        assert rows == [
            {"cycles": 10, "rss_mpps": 0.5, "rss_std": statistics.stdev([0.0, 1.0]),
             "sprayer_mpps": 2.5, "sprayer_std": statistics.stdev([2.0, 3.0])},
            {"cycles": 20, "rss_mpps": 4.5, "rss_std": statistics.stdev([4.0, 5.0]),
             "sprayer_mpps": 6.5, "sprayer_std": statistics.stdev([6.0, 7.0])},
        ]

    def test_rows_reject_wrong_result_count(self):
        sweep = make_sweep((10,), (1,))
        with pytest.raises(ValueError, match="expected 2 results"):
            sweep.rows([])


class TestSweepValidation:
    def test_modes_and_series_are_exclusive(self):
        with pytest.raises(ValueError):
            Sweep(name="t", kind="open_loop", axis="x", values=(1,),
                  modes=("rss",), series=(Series.make("s"),), metric="m")

    def test_needs_a_series(self):
        with pytest.raises(ValueError):
            Sweep(name="t", kind="open_loop", axis="x", values=(1,), metric="m")

    def test_mode_series_labels(self):
        series = mode_series(("rss", "sprayer"))
        assert [s.label for s in series] == ["rss", "sprayer"]
        assert dict(series[0].overrides) == {"mode": "rss"}


class TestRunner:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_custom_kind_runs_through_runner(self):
        register_kind("echo_seed", lambda sc: ({"seed": sc.seed}, {}))
        try:
            scenarios = [Scenario.make("echo_seed", seed=i) for i in (3, 1, 2)]
            results = SweepRunner().run(scenarios)
            assert [r.values["seed"] for r in results] == [3, 1, 2]
        finally:
            from repro.experiments import spec

            del spec.KIND_RUNNERS["echo_seed"]

    def test_register_kind_rejects_duplicates(self):
        """Silently overwriting a kind would make every sweep using it
        quietly measure something else — refuse unless explicit."""
        with pytest.raises(ValueError, match="already registered"):
            register_kind("capacity", lambda sc: ({}, {}))
        with pytest.raises(ValueError, match="already registered"):
            register_kind("scr_head_to_head", lambda sc: ({}, {}))

        register_kind("dup_probe", lambda sc: ({"v": 1}, {}))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_kind("dup_probe", lambda sc: ({"v": 2}, {}))
            register_kind("dup_probe", lambda sc: ({"v": 3}, {}), replace=True)
            result = run_scenario(Scenario.make("dup_probe"))
            assert result.values == {"v": 3}
        finally:
            from repro.experiments import spec

            del spec.KIND_RUNNERS["dup_probe"]


class TestCapacityScenario:
    def test_measure_capacity_equals_capacity_scenario(self):
        """The harness wrapper and a capacity Scenario are one code path."""
        from repro.experiments.harness import measure_capacity

        direct = measure_capacity("sprayer", 0)
        scenario = Scenario.make("capacity", mode="sprayer", nf_cycles=0)
        assert run_scenario(scenario).values["pps"] == direct

    def test_capacity_window_is_pinned(self):
        from repro.experiments.harness import run_open_loop

        expected = run_open_loop(
            "sprayer", 0, duration=CAPACITY_DURATION, warmup=CAPACITY_WARMUP
        ).rate_mpps * 1e6
        got = run_scenario(Scenario.make("capacity", mode="sprayer")).values["pps"]
        assert got == expected
