"""End-to-end integration: TCP flows through the simulated middlebox.

These are the slow-ish tests that pin the paper's headline behaviours:
single-flow Sprayer >> RSS at high NF cost, RSS == Sprayer at low cost,
fairness ordering, reordering confined to spraying modes, and NFs
(NAT) transparently carrying real TCP connections.
"""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.metrics.fairness import jain_index
from repro.nfs import NatNf, SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.iperf import TcpTestbed


def run_testbed(mode, cycles, flows=1, duration=60, seed=11, nf=None, **cfg):
    sim = Simulator()
    nf = nf or SyntheticNf(busy_cycles=cycles)
    engine = MiddleboxEngine(sim, nf, MiddleboxConfig(mode=mode, num_cores=8, **cfg))
    testbed = TcpTestbed(sim, engine, num_flows=flows, rng=random.Random(seed))
    result = testbed.run(duration=duration * MILLISECOND, warmup=duration * MILLISECOND // 2)
    return result, engine, testbed


class TestHeadlineResult:
    def test_sprayer_beats_rss_single_flow_heavy_nf(self):
        """Figure 6(b) right edge: ~6x advantage for one flow at 10k cycles."""
        rss, _, _ = run_testbed("rss", 10000)
        sprayer, _, _ = run_testbed("sprayer", 10000)
        assert sprayer.total_goodput_gbps > 4 * rss.total_goodput_gbps
        assert sprayer.total_goodput_gbps > 7.0

    def test_equal_at_trivial_nf(self):
        """Figure 6(b) left edge: both at line rate."""
        rss, _, _ = run_testbed("rss", 0, duration=30)
        sprayer, _, _ = run_testbed("sprayer", 0, duration=30)
        assert rss.total_goodput_gbps == pytest.approx(9.4, abs=0.3)
        assert sprayer.total_goodput_gbps == pytest.approx(9.4, abs=0.3)

    def test_rss_catches_up_with_many_flows(self):
        """Figure 7(b): RSS approaches Sprayer at high flow counts."""
        rss, _, _ = run_testbed("rss", 10000, flows=16, duration=100)
        sprayer, _, _ = run_testbed("sprayer", 10000, flows=16, duration=100)
        assert rss.total_goodput_gbps > 0.8 * sprayer.total_goodput_gbps


class TestReordering:
    def test_rss_preserves_order(self):
        result, _, testbed = run_testbed("rss", 5000, duration=40)
        assert testbed.server.reorder_arrivals == 0

    def test_sprayer_reorders_but_tcp_adapts(self):
        result, _, testbed = run_testbed("sprayer", 5000, duration=60)
        assert testbed.server.reorder_arrivals > 0
        sender = testbed.senders[0]
        assert sender.dupthresh > 3  # adaptive threshold rose
        assert result.timeouts == 0  # ... and no RTO catastrophes

    def test_prognic_behaves_like_sprayer_without_transfers(self):
        result, engine, _ = run_testbed("prognic", 10000, duration=60)
        assert result.total_goodput_gbps > 7.0
        assert engine.stats.transfers == 0


class TestFairness:
    def test_sprayer_fairer_than_rss_with_collisions(self):
        """Figure 9: with few flows on 8 cores, RSS collisions starve
        some flows while Sprayer shares all cores equally."""
        seeds = (101, 202, 303)
        rss_idx = []
        sprayer_idx = []
        for seed in seeds:
            rss, _, _ = run_testbed("rss", 10000, flows=8, duration=100, seed=seed)
            sprayer, _, _ = run_testbed("sprayer", 10000, flows=8, duration=100, seed=seed)
            rss_idx.append(jain_index(list(rss.per_flow_goodput_bps.values())))
            sprayer_idx.append(jain_index(list(sprayer.per_flow_goodput_bps.values())))
        assert sum(sprayer_idx) / len(seeds) > 0.9
        assert sum(sprayer_idx) / len(seeds) > sum(rss_idx) / len(seeds)


class TestNatOverTcp:
    def test_nat_carries_real_connections_under_sprayer(self):
        nat = NatNf(external_ip=0x0B000001)
        result, engine, testbed = run_testbed(
            "sprayer", 0, flows=4, duration=40, nf=nat
        )
        assert result.total_goodput_gbps > 5.0
        assert nat.translations_active == 4
        # The server saw only translated sources.
        for flow in testbed.server.flows:
            assert flow.src_ip == 0x0B000001

    def test_nat_under_rss_matches(self):
        nat = NatNf(external_ip=0x0B000001)
        result, _, _ = run_testbed("rss", 0, flows=4, duration=40, nf=nat)
        assert result.total_goodput_gbps > 5.0


class TestExtensions:
    def test_flowlet_mode_sits_between_rss_and_sprayer(self):
        """Flowlets avoid most reordering but only parallelize at burst
        granularity: a single flow lands between RSS (one core) and
        full spraying — the §7 trade-off, quantified."""
        flowlet, _, _ = run_testbed("flowlet", 10000, duration=60)
        assert flowlet.total_goodput_gbps > 2.0  # > RSS's ~1.5
        assert flowlet.total_goodput_gbps < 8.0  # < Sprayer's ~8.7

    def test_subset_mode_uses_partial_capacity(self):
        """subset_size=2 of 8 cores: ~2x a single core, well below full
        spraying — the §7 trade-off."""
        subset, _, _ = run_testbed("subset", 10000, duration=60, subset_size=2)
        rss, _, _ = run_testbed("rss", 10000, duration=60)
        sprayer, _, _ = run_testbed("sprayer", 10000, duration=60)
        assert subset.total_goodput_gbps > 1.3 * rss.total_goodput_gbps
        assert subset.total_goodput_gbps < sprayer.total_goodput_gbps
