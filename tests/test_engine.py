"""Integration tests for the middlebox engine under every steering mode."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine, NetworkFunction, WritingPartitionError
from repro.core.config import MODES
from repro.net import ACK, FIN, SYN, FiveTuple, make_tcp_packet, make_udp_packet
from repro.net.five_tuple import PROTO_UDP
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator


def tcp_flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


def build(mode: str, nf=None, **kwargs):
    sim = Simulator()
    nf = nf or SyntheticNf(busy_cycles=1000)
    engine = MiddleboxEngine(sim, nf, MiddleboxConfig(mode=mode, num_cores=8, **kwargs))
    outputs = []
    engine.set_egress(outputs.append)
    return sim, engine, outputs


def inject_connection(sim, engine, flow, packets=100, rng=None):
    rng = rng or random.Random(7)
    engine.receive(make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now)
    sim.run(until=sim.now + MILLISECOND)
    for seq in range(packets):
        pkt = make_tcp_packet(flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16))
        engine.receive(pkt, sim.now)
        if seq % 32 == 31:
            sim.run(until=sim.now + MILLISECOND)
    sim.run(until=sim.now + 5 * MILLISECOND)


class TestAllModes:
    @pytest.mark.parametrize("mode", MODES)
    def test_packets_flow_through(self, mode):
        sim, engine, outputs = build(mode)
        inject_connection(sim, engine, tcp_flow(), packets=64)
        assert len(outputs) == 65  # SYN + 64 data

    @pytest.mark.parametrize("mode", MODES)
    def test_flow_state_created_exactly_once(self, mode):
        sim, engine, outputs = build(mode)
        inject_connection(sim, engine, tcp_flow(), packets=10)
        # Synthetic NF inserts both directions on the first SYN.
        assert engine.flow_state.total_entries() == 2

    @pytest.mark.parametrize("mode", MODES)
    def test_writing_partition_never_violated(self, mode):
        """Enforcement is on; any violation would raise inside sim.run."""
        sim, engine, outputs = build(mode)
        for i in range(8):
            inject_connection(sim, engine, tcp_flow(i), packets=16)
        assert engine.flow_state.total_entries() == 16


class TestRssBehaviour:
    def test_single_flow_uses_one_core(self):
        sim, engine, outputs = build("rss")
        inject_connection(sim, engine, tcp_flow(), packets=128)
        used = [c for c in engine.host.per_core_forwarded() if c > 0]
        assert len(used) == 1

    def test_no_ring_transfers(self):
        sim, engine, outputs = build("rss")
        for i in range(4):
            inject_connection(sim, engine, tcp_flow(i), packets=16)
        assert engine.stats.transfers == 0


class TestSprayerBehaviour:
    def test_single_flow_uses_all_cores(self):
        sim, engine, outputs = build("sprayer")
        inject_connection(sim, engine, tcp_flow(), packets=256)
        used = [c for c in engine.host.per_core_forwarded() if c > 0]
        assert len(used) == 8

    def test_connection_packets_reach_designated_core(self):
        sim, engine, outputs = build("sprayer")
        flow = tcp_flow()
        rng = random.Random(3)
        engine.receive(make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), 0)
        sim.run(until=5 * MILLISECOND)
        designated = engine.designated_core(flow)
        syn_packet = outputs[0]
        assert syn_packet.processed_core == designated

    def test_both_directions_share_designated_core(self):
        sim, engine, outputs = build("sprayer")
        flow = tcp_flow()
        assert engine.designated_core(flow) == engine.designated_core(flow.reversed())

    def test_fin_reaches_designated_core(self):
        sim, engine, outputs = build("sprayer")
        flow = tcp_flow()
        rng = random.Random(3)
        inject_connection(sim, engine, flow, packets=8, rng=rng)
        engine.receive(
            make_tcp_packet(flow, flags=FIN | ACK, tcp_checksum=rng.getrandbits(16)), sim.now
        )
        sim.run(until=sim.now + 5 * MILLISECOND)
        assert outputs[-1].processed_core == engine.designated_core(flow)

    def test_udp_not_sprayed(self):
        sim, engine, outputs = build("sprayer")
        udp = FiveTuple(0x0A000001, 0x0A010001, 5000, 53, PROTO_UDP)
        for i in range(50):
            engine.receive(make_udp_packet(udp), sim.now)
            if i % 16 == 15:
                sim.run(until=sim.now + MILLISECOND)
        sim.run(until=sim.now + 5 * MILLISECOND)
        cores = {p.processed_core for p in outputs}
        assert len(cores) == 1

    def test_transfer_count_matches_foreign_connection_packets(self):
        sim, engine, outputs = build("sprayer")
        rng = random.Random(5)
        transfers_expected = 0
        for i in range(20):
            flow = tcp_flow(i)
            syn = make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16))
            arrival_queue = engine.nic.classify(syn)
            if arrival_queue != engine.designated_core(flow):
                transfers_expected += 1
            engine.receive(syn, sim.now)
            sim.run(until=sim.now + MILLISECOND)
        assert engine.stats.transfers == transfers_expected


class TestProgrammableNicMode:
    def test_no_software_transfers(self):
        """§7: the NIC steers connection packets; rings stay idle."""
        sim, engine, outputs = build("prognic")
        for i in range(20):
            inject_connection(sim, engine, tcp_flow(i), packets=8)
        assert engine.stats.transfers == 0

    def test_still_sprays_regular_packets(self):
        sim, engine, outputs = build("prognic")
        inject_connection(sim, engine, tcp_flow(), packets=256)
        used = [c for c in engine.host.per_core_forwarded() if c > 0]
        assert len(used) == 8


class TestSubsetMode:
    def test_flow_confined_to_subset(self):
        sim, engine, outputs = build("subset", subset_size=2)
        inject_connection(sim, engine, tcp_flow(), packets=256)
        used = [c for c in engine.host.per_core_forwarded() if c > 0]
        assert len(used) == 2


class TestFlowletMode:
    def test_backoff_gap_moves_flowlet(self):
        sim, engine, outputs = build("flowlet", flowlet_gap=1 * MILLISECOND)
        flow = tcp_flow()
        rng = random.Random(9)
        engine.receive(make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), 0)
        sim.run(until=sim.now + MILLISECOND)
        # Two bursts separated by > flowlet_gap: may map to two queues,
        # but every packet within a burst shares its queue.
        for burst in range(2):
            for seq in range(10):
                engine.receive(
                    make_tcp_packet(flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
                    sim.now,
                )
            sim.run(until=sim.now + 3 * MILLISECOND)
        data = [p for p in outputs if not p.is_connection]
        first_burst_cores = {p.processed_core for p in data[:10]}
        second_burst_cores = {p.processed_core for p in data[10:]}
        assert len(first_burst_cores) == 1
        assert len(second_burst_cores) == 1
        assert engine.policy.flowlets_started >= 2


class TestNaiveMode:
    def test_shared_state_pays_invalidations(self):
        """Without designated cores, a flow's SYN and FIN land on
        arbitrary cores; both write its state, so ownership bounces."""

        class OpenCloseNf(NetworkFunction):
            name = "open-close"

            def connection_packets(self, packets, ctx):
                for packet in packets:
                    if packet.flags & SYN:
                        ctx.insert_local_flow(packet.five_tuple, {"open": True})
                    else:
                        entry = ctx.get_local_flow(packet.five_tuple)
                        if entry is not None:
                            entry["open"] = False

        sim, engine, outputs = build("naive", nf=OpenCloseNf())
        rng = random.Random(17)
        for i in range(32):
            flow = tcp_flow(i)
            engine.receive(
                make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
            )
            sim.run(until=sim.now + MILLISECOND)
            engine.receive(
                make_tcp_packet(flow, flags=FIN | ACK, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
            sim.run(until=sim.now + MILLISECOND)
        assert engine.coherence.stats.invalidating_writes > 0

    def test_sprayer_avoids_those_invalidations(self):
        """Same workload under Sprayer: single-writer discipline keeps
        every flow-state write an owner write."""

        class OpenCloseNf(NetworkFunction):
            name = "open-close"

            def connection_packets(self, packets, ctx):
                for packet in packets:
                    if packet.flags & SYN:
                        ctx.insert_local_flow(packet.five_tuple, {"open": True})
                    else:
                        entry = ctx.get_local_flow(packet.five_tuple)
                        if entry is not None:
                            entry["open"] = False

        sim, engine, outputs = build("sprayer", nf=OpenCloseNf())
        rng = random.Random(17)
        for i in range(32):
            flow = tcp_flow(i)
            engine.receive(
                make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
            )
            sim.run(until=sim.now + MILLISECOND)
            engine.receive(
                make_tcp_packet(flow, flags=FIN | ACK, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
            sim.run(until=sim.now + MILLISECOND)
        assert engine.coherence.stats.invalidating_writes == 0


class TestStatelessNf:
    def test_stateless_skips_flow_tables_and_redirection(self):
        class StatelessCounter(NetworkFunction):
            name = "counter"
            stateless = True

            def __init__(self):
                self.count = 0

            def regular_packets(self, packets, ctx):
                self.count += len(packets)

        nf = StatelessCounter()
        sim, engine, outputs = build("sprayer", nf=nf)
        inject_connection(sim, engine, tcp_flow(), packets=32)
        assert nf.count == 33  # SYN included: everything is "regular"
        assert engine.stats.transfers == 0
        assert engine.flow_state.total_entries() == 0


class TestEngineAccounting:
    def test_summary_fields(self):
        sim, engine, outputs = build("sprayer")
        inject_connection(sim, engine, tcp_flow(), packets=16)
        summary = engine.summary()
        assert summary["policy"] == "sprayer"
        assert summary["forwarded"] == 17
        assert summary["rx_packets"] == 17
        assert summary["flow_entries"] == 2
        assert len(summary["per_core_forwarded"]) == 8

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            MiddleboxConfig(mode="nope")
