"""Tests for the QUIC-like transport over sprayed UDP (§7)."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import FiveTuple
from repro.net.five_tuple import PROTO_UDP
from repro.nfs import SyntheticNf
from repro.nic.link import Link
from repro.sim import MICROSECOND, MILLISECOND, SECOND, Simulator
from repro.tcpstack.quic import QuicConfig, QuicLikeReceiver, QuicLikeSender
from repro.trafficgen.flows import CLIENT_NET, SERVER_NET, is_toward_server

QUIC_FLOW = FiveTuple(CLIENT_NET | 5, SERVER_NET | 5, 50000, 443, PROTO_UDP)


class _Loopback:
    """Sender/receiver joined by clean links (no middlebox)."""

    def __init__(self, total_segments=None, loss_filter=None):
        self.sim = Simulator()
        rng = random.Random(6)
        self.loss_filter = loss_filter
        self.c2s = Link(self.sim, 10e9, 1 * MICROSECOND, sink=self._to_server)
        self.s2c = Link(self.sim, 10e9, 1 * MICROSECOND, sink=self._to_client)
        self.receiver = QuicLikeReceiver(self.sim, self.s2c, rng)
        self.sender = QuicLikeSender(
            self.sim, QUIC_FLOW, self.c2s, rng, total_segments=total_segments
        )

    def _to_server(self, packet, now):
        if self.loss_filter is not None and self.loss_filter(packet):
            return
        self.receiver.receive(packet, now)

    def _to_client(self, packet, now):
        self.sender.receive(packet, now)

    def run(self, duration=100 * MILLISECOND):
        self.sender.start()
        self.sim.run(until=duration)


class TestQuicLoopback:
    def test_finite_transfer_completes(self):
        loop = _Loopback(total_segments=300)
        loop.run()
        assert loop.receiver.delivered_segments(QUIC_FLOW) == 300
        assert loop.sender.delivered_offsets == 300

    def test_clean_path_no_retransmissions(self):
        loop = _Loopback(total_segments=500)
        loop.run()
        assert loop.sender.data_retransmissions == 0
        assert loop.sender.ptos == 0

    def test_loss_recovers_without_pto(self):
        dropped = []

        def drop_one(packet):
            if (
                isinstance(packet.app_data, tuple)
                and packet.app_data[1] == 50
                and not dropped
            ):
                dropped.append(True)
                return True
            return False

        loop = _Loopback(total_segments=300, loss_filter=drop_one)
        loop.run()
        assert loop.receiver.delivered_segments(QUIC_FLOW) == 300
        assert loop.sender.data_retransmissions == 1
        assert loop.sender.ptos == 0

    def test_random_loss_still_completes(self):
        rng = random.Random(9)

        def lossy(packet):
            return (
                isinstance(packet.app_data, tuple)
                and packet.app_data[0] == "quic-data"
                and rng.random() < 0.02
            )

        loop = _Loopback(total_segments=300, loss_filter=lossy)
        loop.run(400 * MILLISECOND)
        assert loop.receiver.delivered_segments(QUIC_FLOW) == 300


class TestQuicThroughSprayedMiddlebox:
    def _run(self, nf_cycles=10000, duration=80 * MILLISECOND):
        sim = Simulator()
        engine = MiddleboxEngine(
            sim,
            SyntheticNf(busy_cycles=nf_cycles),
            MiddleboxConfig(mode="sprayer", num_cores=8, spray_udp_ports=(443,)),
        )
        rng = random.Random(3)
        c2m = Link(sim, 10e9, 1 * MICROSECOND,
                   sink=lambda p, t: engine.receive(p, t))
        s2m = Link(sim, 10e9, 1 * MICROSECOND,
                   sink=lambda p, t: engine.receive(p, t))
        receiver = QuicLikeReceiver(sim, s2m, rng)
        sender = QuicLikeSender(sim, QUIC_FLOW, c2m, rng)
        m2s = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: receiver.receive(p, t))
        m2c = Link(sim, 10e9, 1 * MICROSECOND, sink=lambda p, t: sender.receive(p, t))
        engine.set_egress(
            lambda p: (m2s if is_toward_server(p.five_tuple.dst_ip) else m2c).send(p)
        )
        sender.start()
        sim.run(until=duration)
        return sim, engine, sender, receiver

    def test_quic_uses_all_cores_and_sustains_throughput(self):
        """The §7 punchline: a reorder-resilient transport over sprayed
        UDP gets multi-core throughput from a single flow."""
        sim, engine, sender, receiver = self._run()
        cores = [c for c in engine.host.per_core_forwarded() if c > 0]
        assert len(cores) == 8
        delivered = receiver.delivered_segments(QUIC_FLOW)
        gbps = delivered * 1200 * 8 / (80 * MILLISECOND / SECOND) / 1e9
        # 8 cores at 10k cycles sustain ~1.57 Mpps >> this flow's needs;
        # a single RSS core would cap the flow near 1200B*8*~130kpps ≈ 1.2 Gbps.
        assert gbps > 3.0

    def test_reordering_tolerated_via_adaptive_threshold(self):
        sim, engine, sender, receiver = self._run()
        assert receiver.reordered_arrivals > 0  # spraying did reorder
        assert sender.packet_threshold > 3  # and the sender adapted
        assert sender.ptos == 0  # without stalling


class TestQuicValidation:
    def test_requires_udp(self):
        sim = Simulator()
        tcp_flow = FiveTuple(1, 2, 3, 443, 6)
        with pytest.raises(ValueError):
            QuicLikeSender(sim, tcp_flow, Link(sim, sink=lambda p, t: None),
                           random.Random(1))
