"""Tests for the §7 UDP/QUIC spraying extension."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import FiveTuple, make_udp_packet
from repro.net.five_tuple import PROTO_UDP
from repro.nfs import TrafficMonitorNf
from repro.sim import MILLISECOND, Simulator

QUIC_PORT = 443
VOIP_PORT = 5060


def udp_flow(dst_port: int, i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 30000 + i, dst_port, PROTO_UDP)


def build(spray_udp_ports=()):
    sim = Simulator()
    engine = MiddleboxEngine(
        sim,
        TrafficMonitorNf(),
        MiddleboxConfig(mode="sprayer", num_cores=8, spray_udp_ports=spray_udp_ports),
    )
    out = []
    engine.set_egress(out.append)
    return sim, engine, out


def send_udp(sim, engine, flow, count=100, rng=None):
    rng = rng or random.Random(4)
    for _ in range(count):
        packet = make_udp_packet(flow, payload_len=200, checksum=rng.getrandbits(16))
        engine.receive(packet, sim.now)
    sim.run(until=sim.now + 10 * MILLISECOND)


class TestUdpSpraying:
    def test_default_udp_stays_on_one_core(self):
        """§7: by default Sprayer only sprays TCP."""
        sim, engine, out = build()
        send_udp(sim, engine, udp_flow(QUIC_PORT))
        cores = {p.processed_core for p in out}
        assert len(cores) == 1

    def test_listed_udp_port_is_sprayed(self):
        sim, engine, out = build(spray_udp_ports=(QUIC_PORT,))
        send_udp(sim, engine, udp_flow(QUIC_PORT))
        cores = {p.processed_core for p in out}
        assert len(cores) == 8

    def test_unlisted_udp_port_still_rss(self):
        """VoIP-style UDP keeps per-flow steering even when QUIC sprays."""
        sim, engine, out = build(spray_udp_ports=(QUIC_PORT,))
        send_udp(sim, engine, udp_flow(VOIP_PORT))
        cores = {p.processed_core for p in out}
        assert len(cores) == 1

    def test_reverse_direction_also_sprayed(self):
        sim, engine, out = build(spray_udp_ports=(QUIC_PORT,))
        send_udp(sim, engine, udp_flow(QUIC_PORT).reversed())
        cores = {p.processed_core for p in out}
        assert len(cores) == 8

    def test_sprayed_udp_has_stable_designated_core(self):
        sim, engine, out = build(spray_udp_ports=(QUIC_PORT,))
        flow = udp_flow(QUIC_PORT)
        assert engine.designated_core(flow) == engine.designated_core(flow.reversed())
        assert 0 <= engine.designated_core(flow) < 8

    def test_tcp_spraying_unaffected(self):
        from repro.net import ACK, make_tcp_packet

        sim, engine, out = build(spray_udp_ports=(QUIC_PORT,))
        rng = random.Random(6)
        tcp = FiveTuple(0x0A000001, 0x0A010001, 40000, 80, 6)
        for seq in range(100):
            engine.receive(
                make_tcp_packet(tcp, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(until=sim.now + 10 * MILLISECOND)
        cores = {p.processed_core for p in out}
        assert len(cores) == 8
