"""Unit tests for RFC 1071 checksums and header pack/unpack."""

import struct

import pytest

from repro.net.checksum import (
    fold_checksum,
    internet_checksum,
    ipv4_header_checksum,
    tcp_checksum,
    udp_checksum,
    verify_checksum,
)
from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader, UdpHeader


class TestInternetChecksum:
    def test_rfc1071_reference_example(self):
        # The classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
        data = bytes.fromhex("0001f203f4f5f6f7")
        # Sum = 0x2ddf0 -> folded 0xddf2 -> complement 0x220d.
        assert internet_checksum(data) == 0x220D

    def test_odd_length_is_zero_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_empty_data(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_fold_reduces_to_16_bits(self):
        assert fold_checksum(0x1FFFF) == 0x10000 & 0xFFFF | 1  # 0x0001 + 1 = 2? compute directly
        # explicit: 0x1FFFF -> 0xFFFF + 0x1 = 0x10000 -> 0x0000 + 0x1 = 1
        assert fold_checksum(0x1FFFF) == 1

    def test_checksum_of_correct_packet_is_zero(self):
        # Appending the complement makes the total sum 0xFFFF.
        data = bytes.fromhex("0001f203f4f5f6f7")
        checksum = internet_checksum(data)
        whole = data + struct.pack("!H", checksum)
        assert internet_checksum(whole) == 0


class TestTcpChecksum:
    SRC = 0x0A000001
    DST = 0x0A000002

    def _segment(self, payload: bytes = b"hello world!") -> bytes:
        header = TcpHeader(src_port=1234, dst_port=80, seq=1, ack=2, flags=0x18)
        return header.pack_with_checksum(self.SRC, self.DST, payload)

    def test_packed_segment_verifies(self):
        segment = self._segment()
        assert verify_checksum(self.SRC, self.DST, 6, segment)

    def test_corrupted_segment_fails_verification(self):
        segment = bytearray(self._segment())
        segment[-1] ^= 0xFF
        assert not verify_checksum(self.SRC, self.DST, 6, bytes(segment))

    def test_checksum_depends_on_payload(self):
        a = self._segment(b"payload-A")
        b = self._segment(b"payload-B")
        assert a[16:18] != b[16:18]

    def test_checksum_depends_on_pseudo_header(self):
        segment = TcpHeader(src_port=1, dst_port=2).pack_with_checksum(self.SRC, self.DST, b"")
        other = TcpHeader(src_port=1, dst_port=2).pack_with_checksum(self.SRC, self.DST + 1, b"")
        assert segment[16:18] != other[16:18]

    def test_udp_zero_checksum_becomes_ffff(self):
        # Contrived: whatever the data, 0 must never be emitted (RFC 768).
        value = udp_checksum(self.SRC, self.DST, b"\x00" * 8)
        assert value != 0


class TestHeaders:
    def test_ethernet_roundtrip(self):
        eth = EthernetHeader(dst_mac=0x112233445566, src_mac=0xAABBCCDDEEFF)
        parsed = EthernetHeader.unpack(eth.pack())
        assert parsed == eth

    def test_ethernet_short_buffer_raises(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 10)

    def test_ipv4_roundtrip(self):
        ip = Ipv4Header(src_ip=0x0A000001, dst_ip=0x0A000002, protocol=6, total_length=40)
        parsed = Ipv4Header.unpack(ip.pack())
        assert parsed.src_ip == ip.src_ip
        assert parsed.dst_ip == ip.dst_ip
        assert parsed.protocol == ip.protocol
        assert parsed.total_length == ip.total_length

    def test_ipv4_header_checksum_is_valid(self):
        packed = Ipv4Header(src_ip=1, dst_ip=2).pack()
        # Checksum over the full header (including embedded checksum) is 0.
        assert ipv4_header_checksum(packed) == 0

    def test_ipv4_rejects_wrong_version(self):
        packed = bytearray(Ipv4Header().pack())
        packed[0] = (6 << 4) | 5
        with pytest.raises(ValueError):
            Ipv4Header.unpack(bytes(packed))

    def test_tcp_roundtrip(self):
        header = TcpHeader(src_port=5, dst_port=6, seq=7, ack=8, flags=0x12, window=100)
        packed = header.pack_with_checksum(1, 2, b"abc")
        parsed, checksum = TcpHeader.unpack(packed)
        assert parsed.src_port == 5 and parsed.dst_port == 6
        assert parsed.seq == 7 and parsed.ack == 8
        assert parsed.flags == 0x12 and parsed.window == 100
        assert checksum == int.from_bytes(packed[16:18], "big")

    def test_udp_roundtrip(self):
        packed = UdpHeader(src_port=9, dst_port=10).pack_with_checksum(1, 2, b"xy")
        parsed, _checksum = UdpHeader.unpack(packed)
        assert parsed.src_port == 9 and parsed.dst_port == 10
