"""Edge-case tests for the TCP model's recovery machinery."""

import random

import pytest

from repro.net import FiveTuple
from repro.nic.link import Link
from repro.sim import MICROSECOND, MILLISECOND, Simulator
from repro.tcpstack import CubicCongestionControl, TcpFlow, TcpReceiverEndpoint, TcpSenderEndpoint
from repro.tcpstack.endpoint import TcpConfig

FLOW = FiveTuple(0x0A000001, 0x0A010001, 40000, 5201, 6)


class _Harness:
    """Loopback with a programmable packet mangler on the data path."""

    def __init__(self, total_segments=None, mangler=None, config=None):
        self.sim = Simulator()
        rng = random.Random(6)
        self.config = config or TcpConfig()
        self.mangler = mangler
        self.c2s = Link(self.sim, 10e9, 1 * MICROSECOND, sink=self._to_server)
        self.s2c = Link(self.sim, 10e9, 1 * MICROSECOND, sink=self._to_client)
        self.server = TcpReceiverEndpoint(self.sim, self.s2c, rng, self.config)
        self.sender = TcpSenderEndpoint(
            self.sim, TcpFlow(FLOW, total_segments=total_segments), self.c2s,
            CubicCongestionControl(self.config.initial_cwnd, self.config.max_cwnd),
            rng, self.config,
        )
        self._delayed = []

    def _to_server(self, packet, now):
        if self.mangler is not None:
            verdict = self.mangler(packet, now)
            if verdict == "drop":
                return
            if verdict == "hold":
                self._delayed.append(packet)
                return
        self.server.receive(packet, now)

    def release_held(self):
        for packet in self._delayed:
            self.server.receive(packet, self.sim.now)
        self._delayed.clear()

    def _to_client(self, packet, now):
        self.sender.receive(packet, now)

    def run(self, duration):
        self.sender.start()
        self.sim.run(until=duration)


class TestReorderingAdaptation:
    def test_artificial_reordering_raises_dupthresh(self):
        """Hold one segment, deliver it late: the sender must classify
        the episode as reordering and widen its threshold."""
        state = {"held": False}

        def hold_segment_40(packet, now):
            if packet.payload_len > 0 and packet.seq == 40 and not state["held"]:
                state["held"] = True
                return "hold"
            return None

        harness = _Harness(total_segments=200, mangler=hold_segment_40)
        harness.sender.start()
        harness.sim.run(until=2 * MILLISECOND)
        harness.release_held()
        harness.sim.run(until=100 * MILLISECOND)
        assert harness.server.delivered_segments(FLOW) == 200
        assert harness.sender.dupthresh > 3

    def test_adaptation_can_be_disabled(self):
        state = {"held": False}

        def hold_segment_40(packet, now):
            if packet.payload_len > 0 and packet.seq == 40 and not state["held"]:
                state["held"] = True
                return "hold"
            return None

        config = TcpConfig(adaptive_reordering=False)
        harness = _Harness(total_segments=200, mangler=hold_segment_40, config=config)
        harness.sender.start()
        harness.sim.run(until=2 * MILLISECOND)
        harness.release_held()
        harness.sim.run(until=100 * MILLISECOND)
        assert harness.sender.dupthresh == 3

    def test_dupthresh_capped(self):
        config = TcpConfig(max_dupthresh=10)
        harness = _Harness(total_segments=10, config=config)
        harness.sender._raise_dupthresh(10_000)
        assert harness.sender.dupthresh == 10


class TestSpuriousRecoveryUndo:
    def test_spurious_fast_retransmit_is_undone(self):
        """Delay (not drop) a segment long enough to trigger a fast
        retransmit; the DSACK for the duplicate must undo the cwnd cut."""
        state = {"held": False}

        def hold_long(packet, now):
            if packet.payload_len > 0 and packet.seq == 30 and not state["held"]:
                state["held"] = True
                return "hold"
            return None

        harness = _Harness(total_segments=20000, mangler=hold_long)
        harness.sender.start()
        # Run long enough for the FR to fire on SACK evidence, but keep
        # the connection busy so the DSACK still matters.
        harness.sim.run(until=1 * MILLISECOND)
        harness.release_held()  # the original finally arrives: DSACK follows
        harness.sim.run(until=40 * MILLISECOND)
        assert harness.sender.fast_recoveries > 0
        assert harness.sender.spurious_recoveries > 0
        assert harness.sender.state in ("established", "closing", "done")


class TestRtoBehaviour:
    def test_total_blackout_triggers_rto_and_recovers(self):
        window = {"blackout": False}

        def blackout(packet, now):
            if window["blackout"] and packet.payload_len > 0:
                return "drop"
            return None

        harness = _Harness(total_segments=None, mangler=blackout)
        harness.sender.start()
        harness.sim.run(until=2 * MILLISECOND)
        window["blackout"] = True
        # Longer than min_rto (20 ms), so the RTO must fire.
        harness.sim.run(until=60 * MILLISECOND)
        delivered_during = harness.server.delivered_segments(FLOW)
        window["blackout"] = False
        harness.sim.run(until=200 * MILLISECOND)
        assert harness.sender.timeouts >= 1
        # Transfer resumed after the blackout lifted.
        assert harness.server.delivered_segments(FLOW) > delivered_during + 100

    def test_backoff_resets_after_progress(self):
        window = {"blackout": False}

        def blackout(packet, now):
            if window["blackout"] and packet.payload_len > 0:
                return "drop"
            return None

        harness = _Harness(total_segments=300, mangler=blackout)
        harness.sender.start()
        harness.sim.run(until=2 * MILLISECOND)
        window["blackout"] = True
        harness.sim.run(until=50 * MILLISECOND)  # a couple of backoffs
        window["blackout"] = False
        harness.sim.run(until=800 * MILLISECOND)
        assert harness.sender._rto_backoff == 1  # reset by new ACKs
        assert harness.server.delivered_segments(FLOW) == 300


class TestFinHandshake:
    def test_fin_sent_when_done(self):
        harness = _Harness(total_segments=50)
        harness.run(50 * MILLISECOND)
        assert harness.sender.fin_sent
        assert harness.sender.state == "done"
        assert harness.server.flows[FLOW].fin_seen

    def test_endless_flow_never_fins(self):
        harness = _Harness(total_segments=None)
        harness.run(10 * MILLISECOND)
        assert not harness.sender.fin_sent
        assert harness.sender.state == "established"


class TestCubicFriendlyRegion:
    def test_growth_never_below_aimd_estimate(self):
        """After a reduction, CUBIC must at least track the Reno-style
        TCP-friendly window (RFC 8312 §4.2)."""
        cc = CubicCongestionControl(initial_cwnd=100)
        cc.cwnd = 100.0
        cc.ssthresh = 99.0
        cc.on_loss(now=0)
        rtt = MILLISECOND
        now = 0
        for _ in range(500):
            now += rtt // 10
            cc.on_ack(1, now=now, srtt_ps=rtt)
        t_s = now / 1e12
        w_est = 0.7 * 100 + (3 * 0.3 / 1.7) * (t_s / (rtt / 1e12))
        assert cc.cwnd >= min(w_est, cc.max_cwnd) - 1.0
