"""Tests for the NF registry (Table 1 data) and the experiments CLI."""

import pytest

from repro.experiments.__main__ import RUNNERS, main
from repro.nfs.registry import (
    NF_PROFILES,
    NfProfile,
    StateDecl,
    sprayer_compatible,
    table1_rows,
)


class TestRegistry:
    def test_contains_every_paper_nf(self):
        names = {profile.nf for profile in NF_PROFILES.values()}
        assert names == {
            "NAT, IPv4 to IPv6",
            "Firewall",
            "Load Balancer",
            "Traffic Monitor",
            "Redundancy Elimination",
            "DPI",
        }

    def test_row_count_matches_table1(self):
        # Table 1 has 10 state rows across the 6 NFs.
        assert len(table1_rows()) == 10

    def test_dpi_is_the_only_incompatible_nf(self):
        incompatible = [key for key in NF_PROFILES if not sprayer_compatible(key)]
        assert incompatible == ["dpi"]

    def test_nat_rows_match_paper(self):
        nat = NF_PROFILES["nat"]
        flow_map, pool = nat.states
        assert flow_map.scope == "Per-flow"
        assert flow_map.per_packet == "R" and flow_map.per_flow_event == "RW"
        assert pool.scope == "Global"
        assert pool.per_packet == "-" and pool.per_flow_event == "RW"

    def test_every_profile_has_an_implementation(self):
        for key, profile in NF_PROFILES.items():
            assert profile.implementation, key

    def test_declaration_validation(self):
        with pytest.raises(ValueError):
            StateDecl("x", "Universe", "R", "RW")
        with pytest.raises(ValueError):
            StateDecl("x", "Global", "RWX", "RW")


class TestCli:
    def test_runner_names_cover_all_figures(self):
        assert set(RUNNERS) == {"fig1", "fig2", "table1", "fig6", "fig7", "fig8", "fig9"}

    def test_unknown_name_rejected(self):
        assert main(["nope"]) == 2

    def test_single_fast_experiment_runs(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "fig2 done" in out
