"""Tests for the NF registry (Table 1 data) and the experiments CLI."""

import json

import pytest

from repro.experiments.__main__ import RUNNERS, main, parse_seeds
from repro.nfs.registry import (
    NF_PROFILES,
    NfProfile,
    StateDecl,
    sprayer_compatible,
    table1_rows,
)


class TestRegistry:
    def test_contains_every_paper_nf(self):
        names = {profile.nf for profile in NF_PROFILES.values()}
        assert names == {
            "NAT, IPv4 to IPv6",
            "Firewall",
            "Load Balancer",
            "Traffic Monitor",
            "Redundancy Elimination",
            "DPI",
            "DPI, out-of-order tolerant",
            "Synthetic NF (§5)",
        }

    def test_row_count_matches_table1(self):
        # Table 1 has 10 state rows across the 6 NFs.
        assert len(table1_rows()) == 10

    def test_dpi_is_the_only_incompatible_nf(self):
        incompatible = [key for key in NF_PROFILES if not sprayer_compatible(key)]
        assert incompatible == ["dpi"]

    def test_nat_rows_match_paper(self):
        nat = NF_PROFILES["nat"]
        flow_map, pool = nat.states
        assert flow_map.scope == "Per-flow"
        assert flow_map.per_packet == "R" and flow_map.per_flow_event == "RW"
        assert pool.scope == "Global"
        assert pool.per_packet == "-" and pool.per_flow_event == "RW"

    def test_every_profile_has_an_implementation(self):
        for key, profile in NF_PROFILES.items():
            assert profile.implementation, key

    def test_declaration_validation(self):
        with pytest.raises(ValueError):
            StateDecl("x", "Universe", "R", "RW")
        with pytest.raises(ValueError):
            StateDecl("x", "Global", "RWX", "RW")


class TestCli:
    def test_runner_names_cover_all_figures(self):
        assert set(RUNNERS) == {
            "fig1", "fig2", "table1", "fig6", "fig7", "fig8", "fig9", "figR",
            "figS", "figC", "figP",
        }

    def test_unknown_name_rejected(self):
        assert main(["nope"]) == 2

    def test_list_flag_enumerates_runners_and_kinds(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "scenario kinds:" in out
        for name in RUNNERS:
            assert name in out
        assert "resilience" in out
        assert "open_loop" in out
        assert "scr_head_to_head" in out
        assert "chain_planner" in out

    def test_list_flag_ignores_names(self, capsys):
        """--list answers immediately, even alongside experiment names."""
        assert main(["--list", "fig2"]) == 0
        assert "Figure 2" not in capsys.readouterr().out

    def test_single_fast_experiment_runs(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "fig2 done" in out

    def test_jobs_must_be_positive(self, capsys):
        assert main(["fig2", "--jobs", "0"]) == 2

    def test_seeds_parsing(self):
        assert parse_seeds(None) is None
        assert parse_seeds("1,2,3") == (1, 2, 3)
        assert parse_seeds("4") == (1, 2, 3, 4)
        with pytest.raises(ValueError):
            parse_seeds("0")

    def test_quick_parallel_run_writes_telemetry(self, capsys, tmp_path):
        """The CI smoke invocation: parallel sweep + telemetry out."""
        out_path = tmp_path / "t.json"
        assert main(["fig2", "fig1", "--quick", "--jobs", "2",
                     "--telemetry-out", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["experiments"] == ["fig2", "fig1"]
        assert len(document["runs"]) == 3  # two fig2 populations + fig1
        assert "telemetry written" in capsys.readouterr().out


class TestFigPAcceptance:
    """Figure P's acceptance bar: on every chain in the mix, the
    planner-chosen configuration lands within 5% of (or beats) the best
    sound fixed policy."""

    @pytest.fixture(scope="class")
    def panels(self):
        from repro.experiments.figp import run_figp
        from repro.sim.timeunits import MILLISECOND

        return run_figp(duration=3 * MILLISECOND, warmup=1 * MILLISECOND)

    def test_planner_within_five_percent_of_best_on_every_chain(self, panels):
        assert len(panels["throughput"]) == 5
        for row in panels["throughput"]:
            assert row["gap_pct"] <= 5.0, (
                f"{row['chain']}: planner ({row['planned']}) is "
                f"{row['gap_pct']:.2f}% behind the best fixed policy"
            )

    def test_planner_never_chooses_the_unsound_mode(self, panels):
        for row in panels["throughput"]:
            assert row["planned"] != "naive"

    def test_planner_dodges_the_rss_collapse_on_the_lb_chain(self, panels):
        # The VIP-targeted flow set hashes badly: under rss two cores
        # carry half the load and drop. The planner's choice must not
        # inherit that cliff.
        (row,) = [
            r for r in panels["throughput"]
            if r["chain"] == "firewall > load_balancer"
        ]
        assert row["planned"] != "rss"
        assert row[f"{row['planned']}_mpps"] > 1.1 * row["rss_mpps"]
