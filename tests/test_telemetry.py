"""Telemetry subsystem tests: registry, histograms, sampler, tracer, CLI."""

import json
import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.experiments import __main__ as experiments_cli
from repro.experiments import harness
from repro.net import ACK, SYN, FiveTuple, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MICROSECOND, MILLISECOND, Simulator
from repro.telemetry import Counter, EventTracer, Gauge, Histogram, Registry


def tcp_flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


def build_engine(**config_kwargs):
    sim = Simulator()
    config = MiddleboxConfig(mode="sprayer", num_cores=4, **config_kwargs)
    engine = MiddleboxEngine(sim, SyntheticNf(busy_cycles=500), config)
    engine.set_egress(lambda p: None)
    return sim, engine


def inject_flow(sim, engine, flow, packets, rng):
    engine.receive(
        make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
    )
    for seq in range(packets):
        engine.receive(
            make_tcp_packet(flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)),
            sim.now,
        )


class TestCountersAndGauges:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.add(-2.5)
        assert gauge.value == 7.5

    def test_registry_get_or_create_returns_same_object(self):
        registry = Registry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_registry_rejects_type_conflicts(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_bound_metric_is_read_at_dump_time(self):
        registry = Registry()
        source = {"value": 1}
        registry.bind("pull", lambda: source["value"])
        assert registry.dump()["pull"] == 1
        source["value"] = 42
        assert registry.dump()["pull"] == 42

    def test_bind_rejects_duplicates(self):
        registry = Registry()
        registry.bind("pull", lambda: 0)
        with pytest.raises(ValueError):
            registry.bind("pull", lambda: 1)

    def test_dump_is_sorted_by_name(self):
        registry = Registry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert list(registry.dump()) == ["alpha", "zeta"]


class TestHistogramBucketing:
    def test_power_of_two_buckets(self):
        hist = Histogram("h")
        # bucket index is bit_length: 0 -> 0, 1 -> 1, {2,3} -> 2, {4..7} -> 3
        for value in (0, 1, 2, 3, 4, 7):
            hist.observe(value)
        assert hist.buckets == [1, 1, 2, 2]
        assert hist.bucket_bounds() == [0, 1, 3, 7]

    def test_boundary_values_split_buckets(self):
        hist = Histogram("h")
        hist.observe(8)  # 2**3 -> bucket 4
        hist.observe(7)  # 2**3 - 1 -> bucket 3
        assert hist.buckets[3] == 1
        assert hist.buckets[4] == 1

    def test_statistics(self):
        hist = Histogram("h")
        for value in (1, 2, 9):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 12
        assert hist.min == 1
        assert hist.max == 9
        assert hist.mean == 4.0

    def test_negative_observation_rejected(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.observe(-1)

    def test_to_dict_shape(self):
        hist = Histogram("h")
        hist.observe(5)
        dumped = hist.to_dict()
        assert dumped["count"] == 1
        assert dumped["sum"] == 5
        assert [7, 1] in dumped["buckets"]


class TestSamplerCadence:
    def test_snapshots_arrive_on_the_interval(self):
        interval = 100 * MICROSECOND
        sim, engine = build_engine(telemetry_sample_interval=interval)
        rng = random.Random(3)
        # Keep the simulation alive for ~1 ms by spacing injections out.
        for step in range(50):
            flow = tcp_flow(step % 5)
            sim.at(
                step * 20 * MICROSECOND,
                lambda f=flow: inject_flow(sim, engine, f, 4, rng),
            )
        sim.run(max_events=200_000)
        assert not sim.has_live_events()
        series = engine.telemetry.sampler.series
        assert len(series) >= 5
        times = [snap["t_ps"] for snap in series]
        assert all(t % interval == 0 for t in times)
        assert all(b - a == interval for a, b in zip(times, times[1:]))

    def test_sampler_disarms_on_quiescence(self):
        """A drain-style run() must terminate with sampling enabled."""
        sim, engine = build_engine(telemetry_sample_interval=50 * MICROSECOND)
        inject_flow(sim, engine, tcp_flow(), 16, random.Random(1))
        processed = sim.run(max_events=100_000)
        assert processed < 100_000  # terminated by drain, not the backstop
        assert not sim.has_live_events()

    def test_snapshots_carry_per_core_queue_and_ring_state(self):
        sim, engine = build_engine(telemetry_sample_interval=50 * MICROSECOND)
        rng = random.Random(7)
        for i in range(8):
            sim.at(
                i * 30 * MICROSECOND,
                lambda f=tcp_flow(i): inject_flow(sim, engine, f, 8, rng),
            )
        sim.run(max_events=200_000)
        series = engine.telemetry.sampler.series
        assert series
        snap = series[-1]
        assert len(snap["cores"]) == 4
        for entry in snap["cores"]:
            for key in (
                "batches", "handled", "forwarded", "busy_cycles",
                "rx_depth", "rx_enqueued", "rx_dropped", "rx_peak_depth",
                "ring_depth", "ring_enqueued", "ring_dropped",
            ):
                assert key in entry
        assert snap["flow_entries"] == engine.flow_state.total_entries()
        assert sum(e["forwarded"] for e in snap["cores"]) > 0

    def test_sampling_disabled_with_none_interval(self):
        sim, engine = build_engine(telemetry_sample_interval=None)
        inject_flow(sim, engine, tcp_flow(), 16, random.Random(1))
        sim.run(max_events=100_000)
        assert engine.telemetry.sampler is None
        assert engine.telemetry.dump()["series"] == []


class TestEventTracer:
    def run_traced_engine(self):
        sim, engine = build_engine(telemetry_trace=True)
        rng = random.Random(11)
        for i in range(6):
            inject_flow(sim, engine, tcp_flow(i), 12, rng)
        sim.run(max_events=200_000)
        return engine

    def test_chrome_trace_schema_round_trips_through_json(self):
        engine = self.run_traced_engine()
        document = json.loads(json.dumps(engine.telemetry.chrome_trace()))
        events = document["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "i", "M")
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["name"], str)
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_batch_events_are_recorded(self):
        engine = self.run_traced_engine()
        batches = [
            e for e in engine.telemetry.tracer.events if e["name"] == "batch"
        ]
        assert len(batches) == sum(c.stats.batches for c in engine.host.cores)
        assert all("args" in e for e in batches)

    def test_tracer_cap_counts_dropped_events(self):
        tracer = EventTracer(max_events=2)
        for i in range(5):
            tracer.instant("e", 0, i)
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3

    def test_tracing_off_by_default(self):
        sim, engine = build_engine()
        assert engine.telemetry.tracer is None
        assert engine.telemetry.chrome_trace()["traceEvents"] == []


class TestSummaryExport:
    def test_summary_gains_telemetry_counters(self):
        sim, engine = build_engine()
        inject_flow(sim, engine, tcp_flow(), 16, random.Random(5))
        sim.run(max_events=100_000)
        summary = engine.summary()
        telemetry = summary["telemetry"]
        assert telemetry["rx.packets"] == summary["rx_packets"]
        assert telemetry["tx.forwarded"] == summary["forwarded"]
        assert telemetry["ring.transfers"] == summary["transfers"]
        assert telemetry["ring.drops"] == summary["ring_drops"]
        assert telemetry["core.batch_size"]["count"] > 0


class TestTelemetryOutFlag:
    def test_parse_args_variants(self):
        parser = experiments_cli.build_parser()
        args = parser.parse_args(["fig7"])
        assert args.names == ["fig7"] and args.telemetry_out is None
        args = parser.parse_args(["fig7", "--telemetry-out", "/tmp/x.json"])
        assert args.telemetry_out == "/tmp/x.json"
        args = parser.parse_args(["--telemetry-out=/tmp/x.json", "fig6"])
        assert (args.names, args.telemetry_out) == (["fig6"], "/tmp/x.json")

    def test_parse_args_rejects_missing_path_and_unknown_options(self, capsys):
        # argparse exits with status 2; main() converts that to a return.
        assert experiments_cli.main(["fig7", "--telemetry-out"]) == 2
        assert experiments_cli.main(["--frobnicate"]) == 2
        capsys.readouterr()

    def test_main_writes_telemetry_json(self, tmp_path, monkeypatch):
        from repro.experiments.spec import Scenario

        def stub_experiment(runner, seeds=None, quick=False):
            runner.run([
                Scenario.make(
                    "open_loop",
                    label="stub",
                    mode="sprayer",
                    nf_cycles=1000,
                    num_flows=4,
                    duration=3 * MILLISECOND,
                    warmup=1 * MILLISECOND,
                )
            ])

        monkeypatch.setitem(experiments_cli.RUNNERS, "stub", stub_experiment)
        out = tmp_path / "telemetry.json"
        assert experiments_cli.main(["stub", "--telemetry-out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["experiments"] == ["stub"]
        (run,) = document["runs"]
        telemetry = run["telemetry"]
        counters = telemetry["counters"]
        # Every drop class plus rx/tx/ring transfer counters must be there.
        for name in (
            "rx.packets",
            "tx.forwarded",
            "ring.transfers",
            "rx.dropped.queue_full",
            "rx.dropped.fd_cap",
            "nf.drops",
            "ring.drops",
        ):
            assert name in counters
        assert telemetry["series"], "expected per-core time series"
        assert len(telemetry["series"][0]["cores"]) == 8
