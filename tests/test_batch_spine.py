"""The SoA batch spine's record and link legs, in isolation.

Three properties the conformance matrix cannot pin on its own:

1. **Pack/materialize roundtrip** (Hypothesis) — columnizing scalar
   packets and materializing them back preserves every packet-defining
   field, row for row, while drawing *fresh* packet ids (batch rows are
   views, not aliases).
2. **Clone identity under fault duplication** — a duplicating
   ``LinkFault`` on the batch path falls back to scalar sends and mints
   duplicates via ``Packet.clone()``: every delivered packet, original
   or duplicate, carries its own id.
3. **Deferred egress equivalence** — ``send_many`` parks deliveries off
   the heap but must reproduce scalar ``send`` byte for byte: same
   arrival times and order, same counters, and a liveness probe that
   agrees with the heap about what is still pending.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FiveTuple, make_tcp_packet
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.nic.link import Link, LinkFault
from repro.sim import MICROSECOND, Simulator

# Column type bounds: flags/checksums/frame_lens are array('H'),
# seqs/created_ats are array('q').
u16 = st.integers(min_value=0, max_value=0xFFFF)
i48 = st.integers(min_value=0, max_value=2**48)

flows = st.builds(
    FiveTuple,
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    u16,
    u16,
    st.sampled_from([6, 17]),
)

rows = st.tuples(flows, u16, i48, u16, u16, i48)


def batch_of(row_list) -> PacketBatch:
    batch = PacketBatch()
    for flow, flags, seq, checksum, frame_len, created_at in row_list:
        batch.append(flow, flags, seq, checksum, frame_len, created_at)
    return batch


class TestPackMaterializeRoundtrip:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(rows, max_size=64))
    def test_materialize_then_pack_preserves_every_row(self, row_list):
        batch = batch_of(row_list)
        assert list(batch.rows()) == row_list
        packets = batch.materialize_all()
        assert len(packets) == len(row_list)
        for packet, (flow, flags, seq, checksum, frame_len, created_at) in zip(
            packets, row_list
        ):
            assert packet.five_tuple == flow
            assert packet.flags == flags
            assert packet.seq == seq
            assert packet.tcp_checksum == checksum
            assert packet.frame_len == frame_len
            assert packet.created_at == created_at
        # pack() is the inverse: columnizing the scalar views gives the
        # same batch back, row for row.
        assert list(PacketBatch.pack(packets).rows()) == row_list

    @settings(max_examples=100, deadline=None)
    @given(st.lists(rows, min_size=1, max_size=64))
    def test_materialized_rows_draw_fresh_ids(self, row_list):
        batch = batch_of(row_list)
        first = batch.materialize_all()
        second = batch.materialize_all()
        ids = [p.packet_id for p in first + second]
        # Views, not aliases: every materialization is a new packet
        # from the process-wide id stream, in allocation order.
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    def test_pack_of_generated_packets_roundtrips(self):
        rng = random.Random(5)
        packets = [
            make_tcp_packet(
                FiveTuple(rng.getrandbits(32), rng.getrandbits(32), 1234, 80, 6),
                tcp_checksum=rng.getrandbits(16),
            )
            for _ in range(16)
        ]
        batch = PacketBatch.pack(packets)
        for original, view in zip(packets, batch.materialize_all()):
            assert view.five_tuple == original.five_tuple
            assert view.tcp_checksum == original.tcp_checksum
            assert view.packet_id != original.packet_id


class TestCloneIdentityUnderLinkDup:
    """``link_dup`` faults on the batch path: every duplicate is a
    ``clone()`` with its own identity, and the fallback accounts them."""

    def _flow(self, i):
        return FiveTuple(0x0A000000 + i, 0x0B000000 + i, 40000 + i, 80, 6)

    def test_duplicates_get_fresh_packet_ids(self):
        sim = Simulator()
        delivered = []
        link = Link(sim, 10e9, 1 * MICROSECOND, name="dup-link")
        link.sink = lambda packet, now: delivered.append(packet)
        link.batch_sink = lambda batch, now: delivered.extend(
            batch.materialize_all()
        )
        link.set_fault(LinkFault(dup_p=1.0, rng=random.Random(3)))
        batch = PacketBatch.pack(
            [make_tcp_packet(self._flow(i), tcp_checksum=i) for i in range(8)]
        )
        link.send_batch(batch, sim.now)
        sim.run()
        # dup_p=1.0: every row delivered twice, via the scalar fallback.
        assert link.fault_duplicated == 8
        assert len(delivered) == 16
        ids = [p.packet_id for p in delivered]
        assert len(set(ids)) == len(ids), "a duplicate aliased its original's id"
        # Each original/duplicate pair carries the same flow identity.
        by_flow = {}
        for packet in delivered:
            by_flow.setdefault(packet.five_tuple, []).append(packet)
        assert all(len(pair) == 2 for pair in by_flow.values())

    def test_healthy_link_does_not_materialize(self):
        sim = Simulator()
        seen = []
        link = Link(sim, 10e9, 1 * MICROSECOND, name="clean-link")
        link.sink = lambda packet, now: seen.append(packet)
        link.batch_sink = lambda batch, now: seen.append(batch)
        batch = PacketBatch.pack(
            [make_tcp_packet(self._flow(i), tcp_checksum=i) for i in range(4)]
        )
        link.send_batch(batch, sim.now)
        # No fault: the batch arrives columnar, synchronously, with its
        # arrival column filled — no scalar deliveries, no heap events.
        assert seen == [batch]
        assert len(batch.arrivals) == 4
        assert not sim.has_live_events()


class TestDeferredEgressEquivalence:
    """``send_many`` == ``for p: send(p)``, minus the heap events."""

    def _packets(self, n, seed=9):
        rng = random.Random(seed)
        return [
            make_tcp_packet(
                FiveTuple(rng.getrandbits(32), rng.getrandbits(32), 1000 + i, 80, 6),
                tcp_checksum=rng.getrandbits(16),
            )
            for i in range(n)
        ]

    def test_arrivals_and_counters_match_scalar_send(self):
        scalar_sim, batch_sim = Simulator(), Simulator()
        scalar_out, batch_out = [], []
        scalar = Link(scalar_sim, 10e9, 1 * MICROSECOND, name="scalar")
        scalar.sink = lambda packet, now: scalar_out.append((packet.five_tuple, now))
        batched = Link(batch_sim, 10e9, 1 * MICROSECOND, name="batched")
        batched.sink = lambda packet, now: batch_out.append((packet.five_tuple, now))

        packets = self._packets(12)
        for packet in packets:
            scalar.send(packet)
        scalar_sim.run()

        batched.send_many(self._packets(12))
        assert batch_out == []  # parked, not delivered
        assert batched.has_undelivered()
        batch_sim.run()  # nothing on the heap: deferral posts no events
        batched.flush_deferred(scalar_sim.now)
        assert not batched.has_undelivered()

        assert batch_out == scalar_out
        assert batched.packets_sent == scalar.packets_sent
        assert batched.bytes_sent == scalar.bytes_sent
        assert batched._transmitter_free_at == scalar._transmitter_free_at

    def test_flush_is_a_partial_drain_up_to_now(self):
        sim = Simulator()
        out = []
        link = Link(sim, 10e9, 1 * MICROSECOND, name="seam")
        link.sink = lambda packet, now: out.append(now)
        link.send_many(self._packets(6))
        arrivals = [arrival for _, arrival in link._deferred]
        # Flush at the third arrival: exactly the due prefix delivers
        # (run(until=t) fires events with time <= t, so the comparison
        # is inclusive).
        link.flush_deferred(arrivals[2])
        assert out == arrivals[:3]
        assert link.has_undelivered()
        link.flush_deferred(arrivals[-1])
        assert out == arrivals
        assert not link.has_undelivered()

    def test_faulted_or_limited_links_fall_back_to_scalar_sends(self):
        sim = Simulator()
        out = []
        link = Link(sim, 10e9, 1 * MICROSECOND, name="fallback", queue_limit=4)
        link.sink = lambda packet, now: out.append(packet)
        link.send_many(self._packets(3))
        # The scalar path posted real delivery events; nothing deferred.
        assert not link._deferred
        assert sim.has_live_events()
        sim.run()
        assert len(out) == 3
