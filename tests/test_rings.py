"""Unit tests for inter-core transfer rings."""

import pytest

from repro.core.rings import TransferRing
from repro.net import FiveTuple, make_tcp_packet

FLOW = FiveTuple(0x0A000001, 0x0A010001, 1234, 80, 6)


class TestTransferRing:
    def test_fifo(self):
        ring = TransferRing(0)
        packets = [make_tcp_packet(FLOW, seq=i) for i in range(3)]
        for packet in packets:
            assert ring.push(packet)
        assert ring.pop_batch(8) == packets

    def test_bounded_with_drop_accounting(self):
        ring = TransferRing(0, capacity=2)
        assert ring.push(make_tcp_packet(FLOW))
        assert ring.push(make_tcp_packet(FLOW))
        assert not ring.push(make_tcp_packet(FLOW))
        assert ring.dropped == 1

    def test_wake_on_empty_transition_only(self):
        ring = TransferRing(0)
        wakes = []
        ring.on_first_packet = lambda: wakes.append(1)
        ring.push(make_tcp_packet(FLOW))
        ring.push(make_tcp_packet(FLOW))
        assert len(wakes) == 1
        ring.pop_batch(8)
        ring.push(make_tcp_packet(FLOW))
        assert len(wakes) == 2

    def test_push_batch_partial(self):
        ring = TransferRing(0, capacity=3)
        packets = [make_tcp_packet(FLOW, seq=i) for i in range(5)]
        accepted = ring.push_batch(packets)
        assert accepted == 3
        assert ring.dropped == 2

    def test_pop_batch_limit(self):
        ring = TransferRing(0)
        for i in range(5):
            ring.push(make_tcp_packet(FLOW, seq=i))
        assert len(ring.pop_batch(2)) == 2
        assert len(ring) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferRing(0, capacity=0)
        with pytest.raises(ValueError):
            TransferRing(0).pop_batch(0)
