"""Unit tests for the steering policies (without a full engine)."""

import random

import pytest

from repro.core.config import MODES, MiddleboxConfig
from repro.net import ACK, SYN, FiveTuple, make_tcp_packet, make_udp_packet
from repro.net.five_tuple import PROTO_UDP
from repro.steering import make_policy
from repro.trafficgen.flows import random_tcp_flows


def policy_for(mode, **kwargs):
    config = MiddleboxConfig(mode=mode, num_cores=8, **kwargs)
    policy = make_policy(mode, config)
    policy.build_nic()
    return policy


class TestFactory:
    @pytest.mark.parametrize("mode", MODES)
    def test_every_mode_constructs(self, mode):
        policy = policy_for(mode)
        assert policy.name == mode
        assert policy.nic is not None

    def test_unknown_mode(self):
        config = MiddleboxConfig(mode="rss")
        with pytest.raises(ValueError):
            make_policy("bogus", config)


class TestDesignation:
    @pytest.mark.parametrize("mode", MODES)
    def test_designated_core_in_range_and_symmetric(self, mode):
        policy = policy_for(mode)
        for flow in random_tcp_flows(30, random.Random(1)):
            core = policy.designated_core(flow)
            assert 0 <= core < 8
            assert policy.designated_core(flow.reversed()) == core

    def test_rss_designation_is_the_arrival_queue(self):
        policy = policy_for("rss")
        for flow in random_tcp_flows(20, random.Random(2)):
            packet = make_tcp_packet(flow, flags=ACK)
            assert policy.nic.classify(packet) == policy.designated_core(flow)

    def test_udp_designation_follows_rss(self):
        policy = policy_for("sprayer")
        udp = FiveTuple(0x0A000001, 0x0A010001, 5000, 53, PROTO_UDP)
        assert policy.designated_core(udp) == policy.nic.rss.queue_for(udp)


class TestNicProgramming:
    def test_sprayer_nic_has_exhaustive_rules(self):
        policy = policy_for("sprayer")
        assert policy.nic.config.flow_director_enabled
        assert len(policy.nic.flow_director) == 2 ** 8  # spray_bits_for(8)

    def test_sprayer_respects_spray_bits(self):
        policy = policy_for("sprayer", spray_bits=6)
        assert len(policy.nic.flow_director) == 64

    def test_rss_nic_has_no_flow_director(self):
        policy = policy_for("rss")
        assert not policy.nic.config.flow_director_enabled
        assert len(policy.nic.flow_director) == 0

    def test_prognic_has_no_pps_cap(self):
        policy = policy_for("prognic")
        assert policy.nic.config.flow_director_pps_cap is None

    def test_prognic_steers_connection_packets_to_designated(self):
        policy = policy_for("prognic")
        rng = random.Random(3)
        for flow in random_tcp_flows(20, rng):
            syn = make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16))
            assert policy.nic.classify(syn) == policy.designated_core(flow)

    def test_subset_confines_regular_packets(self):
        policy = policy_for("subset", subset_size=2)
        rng = random.Random(4)
        flow = random_tcp_flows(1, rng)[0]
        subset = {c % 8 for c in policy.subset_for(flow)}
        for _ in range(64):
            packet = make_tcp_packet(flow, flags=ACK, tcp_checksum=rng.getrandbits(16))
            assert policy.nic.classify(packet) in subset

    def test_subset_connection_packets_go_to_designated(self):
        policy = policy_for("subset", subset_size=3)
        rng = random.Random(5)
        for flow in random_tcp_flows(10, rng):
            syn = make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16))
            assert policy.nic.classify(syn) == policy.designated_core(flow)

    def test_naive_shares_state(self):
        policy = policy_for("naive")
        assert policy.uses_shared_state
        assert not policy.redirect_connection_packets


class TestFlowletClassifier:
    def test_same_flowlet_same_queue(self):
        policy = policy_for("flowlet")

        class _Clock:
            class sim:
                now = 0

        policy.attach(_Clock())
        rng = random.Random(6)
        flow = random_tcp_flows(1, rng)[0]
        queues = {
            policy.nic.classify(
                make_tcp_packet(flow, flags=ACK, tcp_checksum=rng.getrandbits(16))
            )
            for _ in range(20)
        }
        assert len(queues) == 1  # no time passes: one flowlet

    def test_gap_opens_new_flowlet(self):
        policy = policy_for("flowlet", flowlet_gap=100)

        class _Clock:
            class sim:
                now = 0

        clock = _Clock()
        policy.attach(clock)
        rng = random.Random(7)
        flow = random_tcp_flows(1, rng)[0]
        policy.nic.classify(make_tcp_packet(flow, flags=ACK, tcp_checksum=1))
        started = policy.flowlets_started
        clock.sim.now = 1000  # > gap
        policy.nic.classify(make_tcp_packet(flow, flags=ACK, tcp_checksum=2))
        assert policy.flowlets_started == started + 1
