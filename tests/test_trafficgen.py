"""Tests for traffic generation: distributions, flows, MoonGen, traces."""

import random

import pytest

from repro.net.five_tuple import PROTO_TCP
from repro.sim import MICROSECOND, MILLISECOND, SECOND, Simulator
from repro.trafficgen import (
    BoundedLognormal,
    BoundedPareto,
    FlowSizeDistribution,
    OpenLoopGenerator,
    SyntheticBackboneTrace,
    random_tcp_flows,
)
from repro.trafficgen.flows import CLIENT_NET, SERVER_NET, is_toward_server
from repro.trafficgen.trace import TraceFlow


class TestDistributions:
    def test_bounded_pareto_respects_bounds(self):
        dist = BoundedPareto(alpha=1.3, lower=10e6, upper=1e9)
        rng = random.Random(1)
        for _ in range(500):
            value = dist.sample(rng)
            assert 10e6 <= value <= 1e9

    def test_bounded_pareto_mean_close_to_analytic(self):
        dist = BoundedPareto(alpha=1.5, lower=1.0, upper=1e6)
        rng = random.Random(2)
        samples = [dist.sample(rng) for _ in range(40000)]
        assert sum(samples) / len(samples) == pytest.approx(dist.mean(), rel=0.15)

    def test_bounded_lognormal_respects_upper(self):
        dist = BoundedLognormal(median=8000, sigma=2.0, upper=1e6)
        rng = random.Random(3)
        assert all(dist.sample(rng) <= 1e6 for _ in range(500))

    def test_flow_sizes_elephants_carry_most_bytes(self):
        dist = FlowSizeDistribution()
        rng = random.Random(4)
        sizes = [dist.sample(rng) for _ in range(60000)]
        big = sum(s for s in sizes if s >= 10e6)
        assert big / sum(sizes) > 0.6

    def test_flow_sizes_elephants_are_rare(self):
        dist = FlowSizeDistribution()
        rng = random.Random(5)
        sizes = [dist.sample(rng) for _ in range(30000)]
        count = sum(1 for s in sizes if s >= 10e6)
        assert count / len(sizes) < 0.02

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=0, lower=1, upper=2)
        with pytest.raises(ValueError):
            BoundedLognormal(median=-1, sigma=1, upper=10)
        with pytest.raises(ValueError):
            FlowSizeDistribution(elephant_probability=1.5)


class TestRandomFlows:
    def test_count_and_uniqueness(self):
        flows = random_tcp_flows(100, random.Random(1))
        assert len(flows) == 100
        assert len(set(flows)) == 100

    def test_nets_and_protocol(self):
        for flow in random_tcp_flows(50, random.Random(2)):
            assert flow.src_ip & 0xFFFF0000 == CLIENT_NET
            assert flow.dst_ip & 0xFFFF0000 == SERVER_NET
            assert flow.protocol == PROTO_TCP

    def test_direction_helper(self):
        flow = random_tcp_flows(1, random.Random(3))[0]
        assert is_toward_server(flow.dst_ip)
        assert not is_toward_server(flow.src_ip)


class TestOpenLoopGenerator:
    def _run(self, rate_pps, duration, **kwargs):
        sim = Simulator()
        received = []
        flows = random_tcp_flows(4, random.Random(7))
        generator = OpenLoopGenerator(
            sim, lambda p, now: received.append(p), flows, rate_pps,
            random.Random(8), **kwargs,
        )
        generator.start(at=0)
        sim.run(until=duration)
        generator.stop()
        return received

    def test_rate_is_respected(self):
        received = self._run(1e6, 10 * MILLISECOND)
        data = [p for p in received if not p.is_connection]
        rate = len(data) / (10 * MILLISECOND / SECOND)
        assert rate == pytest.approx(1e6, rel=0.05)

    def test_syns_open_each_flow_once(self):
        received = self._run(1e5, 2 * MILLISECOND)
        syns = [p for p in received if p.is_connection]
        assert len(syns) == 4
        assert len({p.five_tuple for p in syns}) == 4

    def test_flows_share_rate_round_robin(self):
        received = self._run(1e6, 10 * MILLISECOND)
        data = [p for p in received if not p.is_connection]
        counts = {}
        for packet in data:
            counts[packet.five_tuple] = counts.get(packet.five_tuple, 0) + 1
        values = list(counts.values())
        assert max(values) - min(values) <= 1

    def test_checksums_look_uniform(self):
        received = self._run(1e6, 5 * MILLISECOND)
        lsb_counts = [0] * 8
        for packet in received:
            lsb_counts[packet.tcp_checksum & 0x7] += 1
        total = sum(lsb_counts)
        for count in lsb_counts:
            assert abs(count - total / 8) < total / 8 * 0.3

    def test_open_connections_disabled(self):
        received = self._run(1e5, MILLISECOND, open_connections=False)
        assert not any(p.is_connection for p in received)

    def test_burst_autosizing(self):
        sim = Simulator()
        flows = random_tcp_flows(1, random.Random(1))
        slow = OpenLoopGenerator(sim, lambda p, t: None, flows, 1e5, random.Random(2))
        fast = OpenLoopGenerator(sim, lambda p, t: None, flows, 14.88e6, random.Random(3))
        assert slow.burst < fast.burst
        assert fast.burst == 32

    def test_validation(self):
        sim = Simulator()
        flows = random_tcp_flows(1, random.Random(1))
        with pytest.raises(ValueError):
            OpenLoopGenerator(sim, lambda p, t: None, flows, 0, random.Random(2))
        with pytest.raises(ValueError):
            OpenLoopGenerator(sim, lambda p, t: None, [], 1e6, random.Random(2))


class TestTraceFlow:
    def test_packet_in_window_exact(self):
        flow = TraceFlow(start=1000, size_bytes=4500, rate_bps=1e6,
                         num_packets=3, packet_gap=500)
        # Arrivals at 1000, 1500, 2000.
        assert flow.has_packet_in(900, 150)
        assert flow.has_packet_in(1400, 200)
        assert not flow.has_packet_in(1100, 300)  # gap between arrivals
        assert not flow.has_packet_in(2100, 500)  # after the last packet
        assert flow.end == 2000

    def test_single_packet_flow(self):
        flow = TraceFlow(start=50, size_bytes=100, rate_bps=1e6,
                         num_packets=1, packet_gap=0)
        assert flow.has_packet_in(0, 100)
        assert not flow.has_packet_in(51, 100)


class TestSyntheticTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return SyntheticBackboneTrace(random.Random(1), duration_s=6.0)

    def test_elephants_carry_most_bytes(self, trace):
        assert trace.bytes_fraction_above(10e6) > 0.7

    def test_elephants_are_rare(self, trace):
        sizes = trace.flow_sizes()
        big = sum(1 for s in sizes if s >= 10e6)
        assert big / len(sizes) < 0.01

    def test_all_flow_concurrency_band(self, trace):
        q = trace.concurrency_quantiles(samples=1000)
        assert 2 <= q["median"] <= 9  # paper: 4
        assert 7 <= q["p99"] <= 25  # paper: 14

    def test_large_flow_concurrency_band(self, trace):
        q = trace.concurrency_quantiles(samples=1000, min_size_bytes=10e6)
        assert q["median"] <= 4  # paper: 1
        assert q["p99"] <= 8  # paper: 6

    def test_enterprise_preset_is_sparser(self):
        backbone = SyntheticBackboneTrace(random.Random(3), duration_s=3.0)
        enterprise = SyntheticBackboneTrace.enterprise(random.Random(3), duration_s=3.0)
        q_b = backbone.concurrency_quantiles(samples=500)
        q_e = enterprise.concurrency_quantiles(samples=500)
        assert q_e["median"] <= q_b["median"]

    def test_size_cdfs_are_monotone(self, trace):
        curves = trace.size_cdfs()
        for name in ("flows", "bytes"):
            values = [point[1] for point in curves[name]]
            assert values == sorted(values)
            assert values[-1] == pytest.approx(1.0)

    def test_bytes_cdf_lags_flow_cdf(self, trace):
        """Elephants: at any size, byte mass accumulates slower than
        flow count — the visual gap between Figure 1's two curves."""
        curves = trace.size_cdfs(points=50)
        flows = dict(curves["flows"])
        bytes_curve = dict(curves["bytes"])
        common = sorted(set(flows) & set(bytes_curve))[:-1]
        assert common
        assert all(bytes_curve[size] <= flows[size] + 1e-9 for size in common)
