"""Tests for the runtime checkers (``repro.checks``).

Three claims are pinned down here:

1. The :class:`OwnershipAuditor` enforces the paper's single-writer
   discipline *dynamically* on every flow-state backend — including
   the shared and remote variants whose storage structurally permits
   cross-core writes — and raises a picklable
   :class:`OwnershipViolation` carrying the offending core, the owner,
   and the sim timestamp.
2. The checkers are pure observers: a ``strict_checks=True`` run is
   byte-identical to an unchecked run on violation-free traffic
   (Hypothesis property), differing only by the ``checks.*`` counter
   family in the telemetry dump.
3. :func:`audit_determinism` compares per-core event-stream digests
   across same-seed runs and flags the first divergent core.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks import (
    DeterminismViolation,
    EngineChecks,
    EventStreamRecorder,
    OwnershipAuditor,
    audit_determinism,
)
from repro.core import MiddleboxConfig, MiddleboxEngine, OwnershipViolation
from repro.core.flow_state import SharedFlowState
from repro.cpu.costs import CostModel
from repro.experiments.harness import run_open_loop
from repro.net import ACK, SYN, FiveTuple, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator

COSTS = CostModel()


def flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


def make_auditor(**kwargs) -> OwnershipAuditor:
    return OwnershipAuditor(SharedFlowState(COSTS), **kwargs)


def build_engine(strict=True, **config_kwargs):
    sim = Simulator()
    nf = SyntheticNf(busy_cycles=1000)
    config = MiddleboxConfig(mode="sprayer", num_cores=8, **config_kwargs)
    engine = MiddleboxEngine(sim, nf, config, strict_checks=strict)
    engine.set_egress(lambda pkt: None)
    return sim, engine


class TestOwnershipAuditorUnit:
    """The auditor over a bare SharedFlowState — no engine involved."""

    def test_first_writer_claims_and_may_repeat(self):
        auditor = make_auditor()
        auditor.insert_local(3, flow(), {"v": 1})
        auditor.insert_local(3, flow(), {"v": 2})  # same core: fine
        assert auditor.violations == 0
        assert auditor.flows_tracked == 1
        assert auditor.writes == 2

    def test_second_writer_core_raises(self):
        auditor = make_auditor(clock=lambda: 42_000)
        auditor.insert_local(3, flow(), {})
        with pytest.raises(OwnershipViolation) as exc_info:
            auditor.insert_local(5, flow(), {})
        violation = exc_info.value
        assert violation.core_id == 5
        assert violation.owner_core == 3
        assert violation.sim_time == 42_000
        assert auditor.violations == 1

    def test_get_local_is_a_write(self):
        auditor = make_auditor()
        auditor.insert_local(0, flow(), {})
        with pytest.raises(OwnershipViolation):
            auditor.get_local(1, flow())

    def test_reads_never_raise(self):
        auditor = make_auditor()
        auditor.insert_local(0, flow(), {})
        for core in range(8):
            entry, _ = auditor.get(core, flow())
            assert entry == {}
        (entries, _) = auditor.get_many(7, [flow(), flow(2)])
        assert entries == [{}, None]
        assert auditor.violations == 0
        assert auditor.reads == 10

    def test_remove_releases_ownership(self):
        auditor = make_auditor()
        auditor.insert_local(0, flow(), {})
        auditor.remove_local(0, flow())
        # State is gone; a different core's write opens a new epoch.
        auditor.insert_local(4, flow(), {})
        assert auditor.violations == 0

    def test_failed_remove_does_not_release(self):
        auditor = make_auditor()
        auditor.insert_local(0, flow(), {})
        removed, _ = auditor.remove_local(0, flow(9))  # miss
        assert not removed
        with pytest.raises(OwnershipViolation):
            auditor.insert_local(1, flow(), {})

    def test_audit_mode_counts_instead_of_raising(self):
        auditor = make_auditor(strict=False)
        auditor.insert_local(0, flow(), {})
        auditor.insert_local(1, flow(), {})
        auditor.get_local(2, flow())
        assert auditor.violations == 2

    def test_release_writer_core(self):
        auditor = make_auditor()
        auditor.insert_local(0, flow(1), {})
        auditor.insert_local(0, flow(2), {})
        auditor.insert_local(3, flow(3), {})
        assert auditor.release_writer_core(0) == 2
        assert auditor.flows_tracked == 1
        auditor.insert_local(5, flow(1), {})  # fresh claim, no violation
        assert auditor.violations == 0

    def test_evict_and_adopt_release_ownership(self):
        auditor = make_auditor()
        auditor.insert_local(0, flow(), {"v": 1})
        entry = auditor.evict(flow())
        assert entry == {"v": 1}
        auditor.adopt(flow(), entry)
        # Migration re-homed the flow: any core's next write claims it.
        auditor.insert_local(6, flow(), {"v": 2})
        assert auditor.violations == 0

    def test_trail_records_accesses_with_sim_time(self):
        auditor = make_auditor(clock=lambda: 7)
        auditor.insert_local(2, flow(), {})
        auditor.get(3, flow())
        assert (2, flow(), "insert", 7) in auditor.trail
        assert (3, flow(), "get", 7) in auditor.trail

    def test_delegation_preserves_results_and_cycles(self):
        plain = SharedFlowState(COSTS)
        audited = OwnershipAuditor(SharedFlowState(COSTS))
        assert plain.insert_local(0, flow(), {"v": 1}) == audited.insert_local(
            0, flow(), {"v": 1}
        )
        assert plain.get(5, flow()) == audited.get(5, flow())
        assert plain.total_entries() == audited.total_entries()

    def test_getattr_passes_through_backend_attributes(self):
        inner = SharedFlowState(COSTS)
        auditor = OwnershipAuditor(inner)
        assert auditor.table is inner.table


class TestStrictEngineAllBackends:
    """Off-designated writes raise on every flow-state variant."""

    @pytest.mark.parametrize(
        "config_kwargs",
        [
            # Partitioned storage with the static check disabled: only
            # the dynamic auditor stands between a stray write and
            # silent corruption.
            dict(state_backend="partitioned", enforce_partition=False),
            dict(state_backend="shared"),
            dict(state_backend="remote"),
        ],
        ids=["partitioned-unenforced", "shared", "remote"],
    )
    def test_second_writer_raises_deterministically(self, config_kwargs):
        for _ in range(2):  # deterministically: same outcome every build
            sim, engine = build_engine(strict=True, **config_kwargs)
            f = flow()
            target = engine.designated_core(f)
            engine.flow_state.insert_local(target, f, {"v": 1})
            other = (target + 1) % engine.config.num_cores
            with pytest.raises(OwnershipViolation) as exc_info:
                engine.flow_state.insert_local(other, f, {"v": 2})
            violation = exc_info.value
            assert violation.core_id == other
            assert violation.owner_core == target
            assert violation.sim_time == sim.now

    def test_partitioned_static_check_fires_before_dynamic_claim(self):
        """With enforcement on, a first-ever write from the wrong core is
        caught by the designated-core check inside PartitionedFlowState —
        the auditor alone would have let the first writer claim it."""
        sim, engine = build_engine(strict=True)  # enforce_partition=True
        f = flow()
        wrong = (engine.designated_core(f) + 1) % engine.config.num_cores
        with pytest.raises(OwnershipViolation) as exc_info:
            engine.flow_state.insert_local(wrong, f, {})
        assert exc_info.value.owner_core == engine.designated_core(f)

    def test_violation_message_names_cores_and_sim_time(self):
        sim, engine = build_engine(strict=True, state_backend="shared")
        sim._now = 123_456  # advance the clock so the stamp is visible
        f = flow()
        engine.flow_state.insert_local(0, f, {})
        with pytest.raises(OwnershipViolation) as exc_info:
            engine.flow_state.insert_local(1, f, {})
        message = str(exc_info.value)
        assert "core 1" in message
        assert "assigns it to core 0" in message
        assert "sim time 123456 ps" in message

    def test_violation_pickle_roundtrip(self):
        original = OwnershipViolation("insert", flow(), 5, 2, 99_000)
        clone = pickle.loads(pickle.dumps(original))
        assert clone.op == "insert"
        assert clone.flow_id == flow()
        assert clone.core_id == 5
        assert clone.owner_core == 2
        assert clone.sim_time == 99_000
        assert str(clone) == str(original)

    def test_crash_core_releases_dead_cores_flows(self):
        sim, engine = build_engine(strict=True)
        f = flow()
        dead = engine.designated_core(f)
        engine.flow_state.insert_local(dead, f, {})
        assert engine.checks.ownership.flows_tracked == 1
        engine.crash_core(dead)
        # Re-homed: the new designated core's first write is a claim.
        new_home = engine.designated_core(f)
        assert new_home != dead
        engine.flow_state.insert_local(new_home, f, {})
        assert engine.checks.ownership.violations == 0

    def test_disarmed_engine_has_empty_checks(self):
        sim, engine = build_engine(strict=False)
        assert isinstance(engine.checks, EngineChecks)
        assert not engine.checks.enabled
        assert engine.checks.ownership is None
        assert engine.checks.digests() == []


RUN_KWARGS = dict(
    nf_cycles=1500,
    num_flows=8,
    offered_pps=2e6,
    duration=2 * MILLISECOND,
    warmup=500_000_000,  # 0.5 ms
)


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True)


def strip_checks_family(counters):
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith("checks.")
    }


def strip_checks_counters(telemetry):
    """The telemetry dump minus the ``checks.*`` family the auditor adds."""
    out = dict(telemetry)
    out["counters"] = strip_checks_family(telemetry.get("counters", {}))
    return out


def strip_summary(summary):
    """The engine summary with its embedded counter dump normalized too."""
    out = dict(summary)
    out["telemetry"] = strip_checks_family(summary.get("telemetry", {}))
    return out


class TestObserverPurity:
    """Checks on vs. checks off: byte-identical results."""

    @settings(max_examples=3, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        mode=st.sampled_from(["sprayer", "rss", "naive"]),
    )
    def test_strict_checks_are_inert_on_clean_runs(self, seed, mode):
        plain = run_open_loop(mode, seed=seed, **RUN_KWARGS)
        strict = run_open_loop(mode, seed=seed, strict_checks=True, **RUN_KWARGS)
        assert plain.rate_mpps == strict.rate_mpps
        assert canonical(strip_summary(plain.engine_summary)) == canonical(
            strip_summary(strict.engine_summary)
        )
        assert canonical(strip_checks_counters(plain.telemetry)) == canonical(
            strip_checks_counters(strict.telemetry)
        )
        counters = strict.telemetry["counters"]
        assert counters["checks.ownership.violations"] == 0
        assert counters["checks.ownership.writes"] > 0
        assert counters["checks.stream.batches"] > 0

    def test_checks_counters_absent_without_strict(self):
        plain = run_open_loop("sprayer", seed=3, **RUN_KWARGS)
        assert not any(
            name.startswith("checks.") for name in plain.telemetry["counters"]
        )


def drive(sim, engine, seed=11, flows=4, packets=48):
    import random

    rng = random.Random(seed)
    for i in range(flows):
        engine.receive(make_tcp_packet(flow(i), flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now)
    sim.run(until=sim.now + MILLISECOND)
    for seq in range(packets):
        for i in range(flows):
            pkt = make_tcp_packet(
                flow(i), flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)
            )
            engine.receive(pkt, sim.now)
        if seq % 16 == 15:
            sim.run(until=sim.now + MILLISECOND)
    sim.run(until=sim.now + 5 * MILLISECOND)


class TestDeterminismAuditing:
    def test_recorder_digests_and_chains_previous_hook(self):
        recorder = EventStreamRecorder(2)
        seen = []
        hook = recorder.hook(0, prev=lambda *args: seen.append(args))
        hook(0, 1000, 500, 2, 30)
        hook(0, 1500, 500, 0, 32)
        assert recorder.batches == 2
        assert seen == [(0, 1000, 500, 2, 30), (0, 1500, 500, 0, 32)]
        digests = recorder.digests()
        assert digests[0] != 0 and digests[1] == 0

    def test_recorder_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            EventStreamRecorder(0)

    def test_audit_passes_on_identical_runs(self):
        def run():
            sim, engine = build_engine(strict=True)
            drive(sim, engine)
            return engine

        digests = audit_determinism(run, runs=3)
        assert any(digests), "expected at least one non-zero core digest"

    def test_audit_accepts_digest_lists_and_checks(self):
        assert audit_determinism(lambda: [1, 2, 3]) == [1, 2, 3]
        recorder = EventStreamRecorder(1)
        checks = EngineChecks(streams=recorder)
        assert audit_determinism(lambda: checks) == [0]

    def test_audit_flags_divergent_run(self):
        streams = iter([[1, 2, 3], [1, 9, 3]])
        with pytest.raises(DeterminismViolation) as exc_info:
            audit_determinism(lambda: next(streams))
        violation = exc_info.value
        assert violation.run_index == 1
        assert violation.core_id == 1
        assert violation.expected == 2 and violation.got == 9
        assert "not a pure function of its seed" in str(violation)

    def test_audit_flags_core_count_mismatch(self):
        streams = iter([[1, 2], [1, 2, 3]])
        with pytest.raises(DeterminismViolation):
            audit_determinism(lambda: next(streams))

    def test_audit_rejects_single_run(self):
        with pytest.raises(ValueError):
            audit_determinism(lambda: [1], runs=1)

    def test_audit_rejects_digestless_result(self):
        with pytest.raises(TypeError):
            audit_determinism(lambda: object())

    def test_stream_digests_compose_with_telemetry_trace(self):
        """Both the tracer hook and the digest hook see every batch."""
        sim, engine = build_engine(strict=True, telemetry_trace=True)
        drive(sim, engine, flows=2, packets=16)
        assert engine.checks.streams.batches > 0
        assert engine.telemetry.dump()["trace"], "tracer hook was displaced"
