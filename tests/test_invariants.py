"""Packet-conservation invariants over random workloads (Hypothesis).

Every packet presented to the NIC must be accounted for by exactly one
of: forwarded, dropped by the NF, tail-dropped on a full rx queue,
dropped by the Flow Director rate cap, dropped on a fault-disabled
queue, lost to a full transfer ring, or flushed by a core crash:

    rx_packets == forwarded + nf_drops + rx_dropped_queue_full
                  + rx_dropped_fd_cap + rx_dropped_fault
                  + ring_drops + fault_drops

once the simulation drains. The ring-drop term is the regression target:
``EngineStats.ring_drops`` used to be the only trace a vanished
descriptor left, so an accounting bug there was invisible.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, SYN, FiveTuple, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import Simulator


class DroppingNf(SyntheticNf):
    """Synthetic NF that additionally drops every k-th regular packet."""

    name = "dropping-synthetic"

    def __init__(self, busy_cycles: int = 0, drop_every: int = 3):
        super().__init__(busy_cycles)
        self.drop_every = drop_every
        self._seen = 0

    def regular_packets(self, packets, ctx):
        super().regular_packets(packets, ctx)
        for packet in packets:
            self._seen += 1
            if self._seen % self.drop_every == 0:
                ctx.drop(packet)


def build_engine(mode, nf, **config_kwargs):
    sim = Simulator()
    engine = MiddleboxEngine(
        sim, nf, MiddleboxConfig(mode=mode, **config_kwargs)
    )
    engine.set_egress(lambda p: None)
    return sim, engine


def inject_workload(sim, engine, num_flows, packets_per_flow, rng):
    """A burst of connections: every SYN first, then interleaved data."""
    flows = [
        FiveTuple(
            rng.getrandbits(32),
            rng.getrandbits(32),
            rng.randrange(1024, 65536),
            80,
            6,
        )
        for _ in range(num_flows)
    ]
    for flow in flows:
        engine.receive(
            make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)),
            sim.now,
        )
    for seq in range(packets_per_flow):
        for flow in flows:
            engine.receive(
                make_tcp_packet(
                    flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)
                ),
                sim.now,
            )


def assert_conserved(engine):
    ledger = engine.conservation()
    assert ledger["in_queues"] == 0
    assert ledger["in_rings"] == 0
    assert ledger["rx_packets"] == ledger["accounted"], ledger
    # The telemetry counters must tell the same story as the raw stats.
    counters = engine.telemetry.counters()
    assert counters["rx.packets"] == ledger["rx_packets"]
    assert counters["tx.forwarded"] == ledger["forwarded"]
    assert counters["nf.drops"] == ledger["nf_drops"]
    assert counters["rx.dropped.queue_full"] == ledger["rx_dropped_queue_full"]
    assert counters["rx.dropped.fd_cap"] == ledger["rx_dropped_fd_cap"]
    assert counters["rx.dropped.fault"] == ledger["rx_dropped_fault"]
    assert counters["ring.drops"] == ledger["ring_drops"]
    assert counters["engine.fault_drops"] == ledger["fault_drops"]
    return ledger


class TestPacketConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        mode=st.sampled_from(("rss", "sprayer", "flowlet")),
        num_flows=st.integers(min_value=1, max_value=10),
        packets_per_flow=st.integers(min_value=1, max_value=25),
        queue_capacity=st.integers(min_value=4, max_value=64),
        ring_capacity=st.integers(min_value=1, max_value=16),
        busy_cycles=st.sampled_from((0, 1000, 20000)),
        drop_every=st.sampled_from((0, 3)),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_conservation_over_random_workloads(
        self,
        mode,
        num_flows,
        packets_per_flow,
        queue_capacity,
        ring_capacity,
        busy_cycles,
        drop_every,
        seed,
    ):
        nf = (
            DroppingNf(busy_cycles, drop_every)
            if drop_every
            else SyntheticNf(busy_cycles)
        )
        sim, engine = build_engine(
            mode,
            nf,
            num_cores=4,
            batch_size=8,
            queue_capacity=queue_capacity,
            ring_capacity=ring_capacity,
        )
        rng = random.Random(seed)
        inject_workload(sim, engine, num_flows, packets_per_flow, rng)
        sim.run(max_events=2_000_000)
        assert not sim.has_live_events()
        assert_conserved(engine)

    def test_nf_drops_are_counted(self):
        sim, engine = build_engine(
            "sprayer", DroppingNf(busy_cycles=0, drop_every=2), num_cores=4
        )
        inject_workload(sim, engine, 4, 20, random.Random(9))
        sim.run(max_events=500_000)
        ledger = assert_conserved(engine)
        assert ledger["nf_drops"] > 0


class TestRingDropConservation:
    """Regression for the silently-vanishing ring-dropped descriptor."""

    def run_ring_pressure(self):
        sim, engine = build_engine(
            "sprayer",
            SyntheticNf(busy_cycles=20000),
            num_cores=4,
            ring_capacity=1,
            batch_size=32,
        )
        rng = random.Random(2)
        # A burst of SYNs from distinct flows: sprayed across cores, each
        # redirected to its designated core's one-slot ring.
        for i in range(400):
            flow = FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)
            engine.receive(
                make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(max_events=500_000)
        assert not sim.has_live_events()
        return engine

    def test_ring_drops_occur_and_are_conserved(self):
        engine = self.run_ring_pressure()
        ledger = assert_conserved(engine)
        assert ledger["ring_drops"] > 0

    def test_ring_drops_visible_in_time_series(self):
        engine = self.run_ring_pressure()
        series = engine.telemetry.sampler.series
        assert series
        final = series[-1]
        assert sum(e["ring_dropped"] for e in final["cores"]) == (
            engine.stats.ring_drops
        )


class TestFaultConservation:
    """Crash a core mid-workload: every flushed, re-routed, or dead-queue
    packet still lands in exactly one ledger slot."""

    def test_crash_mid_workload_conserves_packets(self):
        # RSS: no re-steer on crash, so post-crash arrivals keep hashing
        # to the dead queue and must surface as rx_dropped_fault.
        sim, engine = build_engine(
            "rss", SyntheticNf(busy_cycles=20000), num_cores=4, queue_capacity=64
        )
        rng = random.Random(7)
        inject_workload(sim, engine, 8, 30, rng)
        # A core with a still-loaded queue, so the crash has work to flush.
        target = next(
            c.core_id for c in engine.host.cores if not c.rx_queue.is_empty
        )
        flushed = engine.crash_core(target)
        assert flushed > 0
        inject_workload(sim, engine, 8, 30, rng)
        sim.run(max_events=2_000_000)
        assert not sim.has_live_events()
        ledger = assert_conserved(engine)
        assert ledger["fault_drops"] >= flushed
        assert ledger["rx_dropped_fault"] > 0

    def test_queue_flush_keeps_cumulative_counters(self):
        """``RxQueue.clear()`` semantics, pinned at the ledger level.

        A crash flushes the dead core's queue *buffer* but must leave
        the cumulative counters (``enqueued``, ``dropped``,
        ``peak_depth``) untouched: the sampler differentiates
        ``enqueued`` into an rx rate (a reset would produce a negative
        delta) and the flushed packets move to the ledger's
        ``fault_drops`` slot — depth is the only term that changes.
        """
        sim, engine = build_engine(
            "rss", SyntheticNf(busy_cycles=20000), num_cores=4, queue_capacity=64
        )
        rng = random.Random(11)
        inject_workload(sim, engine, 8, 40, rng)
        target = next(
            c.core_id for c in engine.host.cores if not c.rx_queue.is_empty
        )
        queue = engine.nic.queues[target]
        depth = len(queue)
        enqueued, dropped, peak = queue.enqueued, queue.dropped, queue.peak_depth
        fault_drops_before = engine.stats.fault_drops

        flushed = engine.crash_core(target)

        # The buffer emptied; the flush covers at least the queue depth
        # (the core's transfer ring may add more).
        assert len(queue) == 0
        assert flushed >= depth > 0
        # Cumulative telemetry survived the flush bit for bit.
        assert queue.enqueued == enqueued
        assert queue.dropped == dropped
        assert queue.peak_depth == peak
        # Every flushed packet landed in exactly one ledger slot.
        assert engine.stats.fault_drops == fault_drops_before + flushed
        sim.run(max_events=2_000_000)
        assert not sim.has_live_events()
        ledger = assert_conserved(engine)
        assert ledger["fault_drops"] >= flushed
