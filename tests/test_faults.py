"""The fault-injection subsystem: plans, injectors, and the figR study.

Covers the three layers:

- :mod:`repro.faults.plan` — validation and ordering of the frozen,
  picklable fault schedules;
- :mod:`repro.faults.injector` — each fault kind lands on its seam,
  conservation holds through every one, and the empty plan is a strict
  no-op;
- :mod:`repro.faults.study` / figR — the degradation study's headline
  claim: under a mid-run core fault, Sprayer keeps both throughput and
  tail latency where RSS loses both.
"""

import pickle
import random

import pytest

from repro.cluster.cluster import ClusterMiddlebox
from repro.faults import (
    ClusterFaultInjector,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    core_crash,
    core_slow,
    core_stall,
    fd_evict,
    host_down,
    link_dup,
    link_jitter,
    link_loss,
    queue_pause,
)
from repro.faults.study import run_resilience
from repro.net import SYN, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import random_tcp_flows

MS = MILLISECOND
#: Short, loaded run: 50 % of the 4-core aggregate for nf_cycles=3000
#: (capacity/core = 2e9 / 3170 cycles ~ 631 kpps).
STUDY_KWARGS = dict(
    nf_cycles=3000,
    num_flows=16,
    num_cores=4,
    offered_pps=1.26e6,
    duration=6 * MS,
    warmup=1 * MS,
    seed=3,
)


def run_study(mode, plan, **overrides):
    kwargs = dict(STUDY_KWARGS)
    kwargs.update(overrides)
    return run_resilience(mode, plan=plan, **kwargs)


class TestFaultPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor_strike", at=0, until=1)

    def test_windowed_kind_needs_until(self):
        with pytest.raises(ValueError, match="needs an until"):
            FaultEvent("core_slow", at=5, magnitude=2.0)
        with pytest.raises(ValueError, match="after at"):
            FaultEvent("core_slow", at=5, until=5, magnitude=2.0)

    def test_permanent_kind_forbids_until(self):
        with pytest.raises(ValueError, match="permanent"):
            FaultEvent("core_crash", at=5, until=9)

    def test_probability_magnitudes_bounded(self):
        with pytest.raises(ValueError, match="probability"):
            link_loss(0, 10, probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            link_dup(0, 10, probability=0.0)
        with pytest.raises(ValueError, match="probability"):
            fd_evict(0, fraction=-0.2)

    def test_slow_factor_and_jitter_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            core_slow(0, 0, 10, factor=0.0)
        with pytest.raises(ValueError, match="picosecond"):
            link_jitter(0, 10, jitter_ps=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            core_crash(0, at=-1)

    def test_of_sorts_events_and_window_spans_them(self):
        plan = FaultPlan.of(
            core_stall(1, at=30, until=40),
            core_slow(0, at=10, until=20, factor=2.0),
            core_crash(2, at=25),
        )
        assert [e.kind for e in plan.events] == ["core_slow", "core_crash", "core_stall"]
        assert plan.window() == (10, 40)
        assert len(plan) == 3 and not plan.is_empty

    def test_plan_is_hashable_and_picklable(self):
        plan = FaultPlan.of(core_slow(1, at=10, until=20, factor=4.0), seed=7)
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert FaultPlan().is_empty and FaultPlan().window() is None


class TestInjectorValidation:
    def build(self, mode="rss", num_cores=4):
        from repro.core import MiddleboxConfig, MiddleboxEngine

        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(0), MiddleboxConfig(mode=mode, num_cores=num_cores)
        )
        engine.set_egress(lambda p: None)
        return engine

    def test_core_target_out_of_range(self):
        engine = self.build(num_cores=4)
        with pytest.raises(ValueError, match="out of range"):
            FaultInjector(engine, FaultPlan.of(core_crash(4, at=0)))

    def test_link_fault_needs_link(self):
        engine = self.build()
        with pytest.raises(ValueError, match="needs a link"):
            FaultInjector(engine, FaultPlan.of(link_loss(0, 10, 0.5)))

    def test_host_down_rejected_by_engine_injector(self):
        engine = self.build()
        with pytest.raises(ValueError, match="ClusterFaultInjector"):
            FaultInjector(engine, FaultPlan.of(host_down(0, at=0)))

    def test_empty_plan_is_inert(self):
        """No events scheduled, no counters bound, no RNG created."""
        engine = self.build()
        before = engine.sim._live
        injector = FaultInjector(engine, FaultPlan())
        assert engine.sim._live == before
        assert injector._rng is None
        assert not any(
            name.startswith("faults.") for name in engine.telemetry.counters()
        )


class TestCoreFaults:
    def test_slowdown_degrades_rss_throughput(self):
        plan = FaultPlan.of(core_slow(0, 2 * MS, 5 * MS, factor=10.0))
        healthy = run_study("rss", plan=None)
        faulted = run_study("rss", plan=plan)
        assert faulted.rate_mpps < healthy.rate_mpps
        assert faulted.p99_latency_us > 10 * healthy.p99_latency_us
        summary = faulted.engine_summary
        assert summary["rx_dropped_queue_full"] > 0

    def test_stall_and_resume_conserve_packets(self):
        from repro.core import MiddleboxConfig, MiddleboxEngine
        from repro.net import ACK

        sim = Simulator()
        engine = MiddleboxEngine(
            sim, SyntheticNf(2000),
            MiddleboxConfig(mode="rss", num_cores=4, queue_capacity=16),
        )
        engine.set_egress(lambda p: None)
        rng = random.Random(3)
        flows = random_tcp_flows(8, rng)
        # Stall the core RSS feeds with the first flow, so its 16-deep
        # queue provably sees arrivals while stalled.
        target = engine.nic.rss.queue_for(flows[0])
        injector = FaultInjector(
            engine, FaultPlan.of(core_stall(target, at=1 * MS, until=5 * MS))
        )
        # Steady arrivals across the stall window; the stalled core's
        # queue overflows, then drains after resume.
        for seq in range(80):
            t = seq * (MS // 10)
            for flow in flows:
                sim.at(
                    t, engine.receive,
                    make_tcp_packet(flow, flags=ACK, seq=seq,
                                    tcp_checksum=rng.getrandbits(16)),
                    t,
                )
        sim.run(until=20 * MS)
        assert not sim.has_live_events()
        ledger = engine.conservation()
        assert ledger["rx_dropped_queue_full"] > 0
        assert ledger["rx_packets"] == ledger["accounted"], ledger
        records = injector.to_dicts()
        assert [r["kind"] for r in records] == ["core_stall"]
        assert records[0]["cleared_at"] == 5 * MS

    def test_crash_flushes_and_disables_queue(self):
        plan = FaultPlan.of(core_crash(0, at=2 * MS))
        result = run_study("rss", plan=plan)
        summary = result.engine_summary
        counters = result.telemetry["counters"]
        # RSS cannot re-steer: arrivals keep hashing to the dead queue.
        assert summary["rx_dropped_fault"] > 0
        assert counters["faults.applied"] == 1
        assert summary["rx_packets"] == (
            summary["forwarded"] + summary["nf_drops"]
            + summary["rx_dropped_queue_full"] + summary["rx_dropped_fd_cap"]
            + summary["rx_dropped_fault"] + summary["ring_drops"]
            + summary["fault_drops"]
        )

    def test_sprayer_resteers_around_crash(self):
        plan = FaultPlan.of(core_crash(0, at=2 * MS))
        rss = run_study("rss", plan=plan)
        sprayer = run_study("sprayer", plan=plan)
        assert sprayer.rate_mpps > rss.rate_mpps
        counters = sprayer.telemetry["counters"]
        assert counters["faults.resteers"] >= 1
        # After the re-steer no data lands on the dead queue; only
        # packets already queued there at crash time are lost.
        assert sprayer.engine_summary["rx_dropped_fault"] == 0

    def test_resteer_false_removes_sprayer_advantage(self):
        plan = FaultPlan.of(core_crash(0, at=2 * MS))
        reacting = run_study("sprayer", plan=plan, resteer=True)
        frozen = run_study("sprayer", plan=plan, resteer=False)
        assert frozen.engine_summary["rx_dropped_fault"] > 0
        assert reacting.rate_mpps > frozen.rate_mpps


class TestLinkFaults:
    def test_loss_window_drops_upstream_of_nic(self):
        plan = FaultPlan.of(link_loss(2 * MS, 4 * MS, probability=0.5), seed=11)
        result = run_study("sprayer", plan=plan)
        baseline = run_study("sprayer", plan=None)
        counters = result.telemetry["counters"]
        assert counters["faults.link_lost"] > 0
        # Lost packets never reach the NIC, so rx sees fewer packets and
        # the engine ledger still balances.
        assert result.engine_summary["rx_packets"] == (
            baseline.engine_summary["rx_packets"] - counters["faults.link_lost"]
        )

    def test_duplication_adds_rx_packets(self):
        plan = FaultPlan.of(link_dup(2 * MS, 4 * MS, probability=0.3), seed=11)
        result = run_study("sprayer", plan=plan)
        baseline = run_study("sprayer", plan=None)
        counters = result.telemetry["counters"]
        assert counters["faults.link_duplicated"] > 0
        assert result.engine_summary["rx_packets"] == (
            baseline.engine_summary["rx_packets"]
            + counters["faults.link_duplicated"]
        )

    def test_jitter_window_counts_and_conserves(self):
        plan = FaultPlan.of(link_jitter(2 * MS, 4 * MS, jitter_ps=5_000_000), seed=11)
        result = run_study("sprayer", plan=plan)
        counters = result.telemetry["counters"]
        assert counters["faults.link_jittered"] > 0
        summary = result.engine_summary
        assert summary["rx_packets"] == (
            summary["forwarded"] + summary["nf_drops"]
            + summary["rx_dropped_queue_full"] + summary["rx_dropped_fd_cap"]
            + summary["rx_dropped_fault"] + summary["ring_drops"]
            + summary["fault_drops"]
        )


class TestNicFaults:
    def test_queue_pause_drops_only_inside_window(self):
        plan = FaultPlan.of(queue_pause(0, 2 * MS, 4 * MS))
        result = run_study("rss", plan=plan)
        summary = result.engine_summary
        assert summary["rx_dropped_fault"] > 0
        records = result.fault_records
        assert records[0]["kind"] == "queue_pause"
        assert records[0]["cleared_at"] == 4 * MS
        # After the window the queue takes traffic again: the run still
        # forwards most of the offered load.
        assert summary["forwarded"] > 0.5 * summary["rx_packets"]

    def test_fd_evict_shrinks_table_and_falls_back_to_rss(self):
        plan = FaultPlan.of(fd_evict(2 * MS, fraction=0.5), seed=13)
        result = run_study("sprayer", plan=plan)
        counters = result.telemetry["counters"]
        assert counters["faults.fd_evicted"] > 0
        # Evicted checksum values fall back to RSS classification.
        assert counters["nic.rss_fallback"] > 0


class TestClusterFaults:
    def _loaded_cluster(self):
        sim = Simulator()
        cluster = ClusterMiddlebox(
            sim, lambda host: SyntheticNf(0), num_hosts=3
        )
        cluster.set_egress(lambda p: None)
        rng = random.Random(5)
        for flow in random_tcp_flows(48, rng):
            cluster.receive(
                make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)),
                sim.now,
            )
        sim.run(until=1 * MS)
        return sim, cluster

    def test_host_down_loses_state_and_redirects_flows(self):
        sim, cluster = self._loaded_cluster()
        injector = ClusterFaultInjector(
            cluster, FaultPlan.of(host_down(0, at=2 * MS))
        )
        sim.run(until=3 * MS)
        assert injector.hosts_failed == ["host0"]
        assert cluster.live_hosts == ["host1", "host2"]
        assert cluster.stats.host_failures == 1
        assert cluster.stats.lost_entries > 0
        # New traffic dispatches to survivors only.
        rng = random.Random(17)
        for flow in random_tcp_flows(16, rng):
            host = cluster.host_for(flow)
            assert host in cluster.live_hosts
        summary = cluster.summary()
        assert summary["failed_hosts"] == ["host0"]

    def test_failed_host_state_never_resurrects(self):
        sim, cluster = self._loaded_cluster()
        cluster.fail_host("host1")
        before = cluster.stats.migrated_entries
        cluster.scale_out()
        # Migration after the failure must not move entries out of the
        # dead host (its state is lost, not parked).
        assert cluster.engines["host1"].flow_state.total_entries() > 0  # frozen corpse
        assert all(
            cluster.host_for(flow) != "host1"
            for flow in random_tcp_flows(16, random.Random(23))
        )
        assert cluster.stats.migrated_entries >= before

    def test_cannot_fail_last_live_host(self):
        sim = Simulator()
        cluster = ClusterMiddlebox(sim, lambda host: SyntheticNf(0), num_hosts=2)
        cluster.fail_host("host0")
        with pytest.raises(ValueError, match="last live host"):
            cluster.fail_host("host1")
        with pytest.raises(ValueError, match="already failed"):
            cluster.fail_host("host0")

    def test_cluster_injector_rejects_engine_kinds(self):
        sim = Simulator()
        cluster = ClusterMiddlebox(sim, lambda host: SyntheticNf(0), num_hosts=2)
        with pytest.raises(ValueError, match="only handles host_down"):
            ClusterFaultInjector(cluster, FaultPlan.of(core_crash(0, at=0)))


class TestTelemetryAndTimeline:
    def test_fault_trace_events_recorded(self):
        plan = FaultPlan.of(core_slow(0, 2 * MS, 4 * MS, factor=8.0))
        result = run_study("rss", plan=plan, telemetry_trace=True)
        names = {event["name"] for event in result.telemetry["trace"]}
        assert "fault_core_slow" in names
        assert "fault_clear_core_slow" in names

    def test_timeline_buckets_cover_run_and_show_damage(self):
        plan = FaultPlan.of(core_slow(0, 2 * MS, 4 * MS, factor=10.0))
        result = run_study("rss", plan=plan)
        assert len(result.timeline) == 6  # 6 ms run, 1 ms buckets
        during = [r for r in result.timeline if 2.0 <= r["t_ms"] < 4.0]
        before = [r for r in result.timeline if r["t_ms"] < 2.0]
        assert max(r["p99_us"] for r in during) > 10 * max(
            r["p99_us"] for r in before
        )

    def test_injector_counters_exported(self):
        plan = FaultPlan.of(
            core_slow(0, 2 * MS, 4 * MS, factor=4.0),
            core_crash(1, at=3 * MS),
        )
        result = run_study("rss", plan=plan)
        counters = result.telemetry["counters"]
        assert counters["faults.scheduled"] == 2
        assert counters["faults.applied"] == 2
        assert counters["faults.cleared"] == 1


class TestScrUnderFaults:
    """State-compute replication under the fault plans of figR/figS:
    recovery is a spray reprogram and nothing else — no state re-homing,
    no stranded ring descriptors, no resurrection traffic."""

    def test_core_slow_resteers_with_zero_fault_drops(self):
        plan = FaultPlan.of(core_slow(0, 2 * MS, 5 * MS, factor=10.0))
        healthy = run_study("scr", plan=None)
        faulted = run_study("scr", plan=plan)
        summary = faulted.engine_summary
        assert summary["fault_drops"] == 0
        assert summary["rx_dropped_fault"] == 0
        assert faulted.telemetry["counters"]["faults.resteers"] >= 1
        # Seven-eighths of capacity absorbs the re-sprayed load: no
        # RSS-style collapse.
        assert faulted.rate_mpps > 0.9 * healthy.rate_mpps

    def test_core_crash_loses_no_flow_state(self):
        plan = FaultPlan.of(core_crash(0, at=2 * MS))
        healthy = run_study("scr", plan=None)
        faulted = run_study("scr", plan=plan)
        summary = faulted.engine_summary
        # Every flow the healthy run knew survives the crash: the
        # surviving replicas hold (or replayed) the full history.
        assert summary["flow_entries"] == healthy.engine_summary["flow_entries"]
        # After the spray reprogram nothing lands on the dead queue, and
        # there are no rings for descriptors to strand in.
        assert summary["rx_dropped_fault"] == 0
        assert summary["ring_drops"] == 0
        assert summary["transfers"] == 0
        assert faulted.telemetry["counters"]["faults.resteers"] >= 1
        # The only casualties are packets flushed mid-batch at crash
        # time — bounded by one in-flight batch, never post-crash losses.
        assert summary["fault_drops"] <= faulted.engine_summary["rx_packets"] * 0.001
        assert summary["fault_drops"] <= 32

    def test_crash_recovery_beats_sprayer_state_loss(self):
        """Sprayer re-homes the dead core's designated flows and their
        state restarts from scratch; SCR's replicas never lose it."""
        plan = FaultPlan.of(core_crash(0, at=2 * MS))
        scr = run_study("scr", plan=plan)
        sprayer = run_study("sprayer", plan=plan)
        assert scr.rate_mpps >= sprayer.rate_mpps
        # Sprayer's partitioned table keeps counting the corpse's
        # unreachable entries; SCR needs no such asterisk — its count
        # is state any live core can actually serve.
        assert scr.engine_summary["flow_entries"] > 0


class TestFigRAcceptance:
    def test_sprayer_beats_rss_during_core_slowdown(self):
        """The PR's headline: quick-mode figR must show Sprayer strictly
        ahead on throughput AND tail latency under the fault."""
        from repro.experiments.figr import run_figr

        rows, timeline = run_figr(
            duration=8 * MS, warmup=2 * MS, fault_at=3 * MS, fault_until=6 * MS
        )
        by_mode = {row["mode"]: row for row in rows}
        assert by_mode["sprayer"]["fwd_mpps"] > by_mode["rss"]["fwd_mpps"]
        assert by_mode["sprayer"]["p99_us"] < by_mode["rss"]["p99_us"]
        # The gap is the story: RSS tail latency explodes by orders of
        # magnitude while Sprayer's stays flat.
        assert by_mode["rss"]["p99_us"] > 10 * by_mode["sprayer"]["p99_us"]
        assert by_mode["rss"]["queue_drops"] > 0
        assert by_mode["sprayer"]["queue_drops"] == 0
        assert timeline and set(timeline[0]) == {
            "t_ms", "rss_mpps", "rss_p99_us", "flowlet_mpps",
            "flowlet_p99_us", "sprayer_mpps", "sprayer_p99_us",
        }


class TestFigSAcceptance:
    def test_scr_beats_sprayer_under_flood_and_crash(self):
        """The tentpole's headline: quick-mode figS must show SCR at or
        above Sprayer throughput with lower tail latency, both under
        the targeted SYN flood and with the hotspot core crashed."""
        from repro.experiments.figs import run_figs

        panels = run_figs(
            duration=8 * MS, warmup=2 * MS, fault_at=4 * MS
        )
        for panel in ("flood", "crash"):
            by_mode = {row["mode"]: row for row in panels[panel]}
            scr, sprayer = by_mode["scr"], by_mode["sprayer"]
            assert scr["fwd_mpps"] >= sprayer["fwd_mpps"], panel
            assert scr["p99_us"] < sprayer["p99_us"], panel
            # The flood concentrates on one core under Sprayer (its
            # designated core) but spreads under SCR: only the former
            # drops packets.
            assert sprayer["queue_drops"] + sprayer["ring_drops"] > 0, panel
            assert scr["queue_drops"] + scr["ring_drops"] == 0, panel
        # Panel B: SCR loses (at most) only the packets flushed at
        # crash time, and recovers immediately.
        crash = {row["mode"]: row for row in panels["crash"]}
        assert crash["scr"]["fault_drops"] <= 16
        assert crash["scr"]["recovery_ms"] == 0
