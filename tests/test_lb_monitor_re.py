"""Tests for the load balancer, traffic monitor, and redundancy elimination."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, FIN, RST, SYN, FiveTuple, make_tcp_packet
from repro.nfs import LoadBalancerNf, RedundancyEliminationNf, TrafficMonitorNf
from repro.sim import MILLISECOND, Simulator
from repro.trafficgen.flows import SERVER_NET

VIP = SERVER_NET | 0x0101
BACKENDS = [SERVER_NET | 0x10, SERVER_NET | 0x11, SERVER_NET | 0x12]


def vip_flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, VIP, 20000 + i, 80, 6)


class _Harness:
    def __init__(self, nf, mode="sprayer"):
        self.sim = Simulator()
        self.nf = nf
        self.engine = MiddleboxEngine(self.sim, nf, MiddleboxConfig(mode=mode))
        self.out = []
        self.engine.set_egress(self.out.append)
        self.rng = random.Random(31)

    def send(self, five_tuple, flags=ACK, seq=0, payload_len=0, payload=None):
        packet = make_tcp_packet(
            five_tuple, flags=flags, seq=seq, payload_len=payload_len,
            tcp_checksum=self.rng.getrandbits(16),
        )
        if payload is not None:
            packet.payload = payload
            packet.payload_len = len(payload)
            packet.frame_len = max(64, 58 + len(payload))
        self.engine.receive(packet, self.sim.now)
        self.sim.run(until=self.sim.now + MILLISECOND)
        return packet


class TestLoadBalancer:
    def test_new_connection_assigned_least_loaded_backend(self):
        harness = _Harness(LoadBalancerNf(vip=VIP, backends=BACKENDS))
        harness.send(vip_flow(1), flags=SYN)
        assert harness.out[-1].app_data == ("lb_backend", BACKENDS[0])

    def test_assignment_is_sticky(self):
        harness = _Harness(LoadBalancerNf(vip=VIP, backends=BACKENDS))
        harness.send(vip_flow(1), flags=SYN)
        backend = harness.out[-1].app_data
        for seq in range(5):
            harness.send(vip_flow(1), flags=ACK, seq=seq)
            assert harness.out[-1].app_data == backend

    def test_connections_spread_across_backends(self):
        harness = _Harness(LoadBalancerNf(vip=VIP, backends=BACKENDS))
        for i in range(9):
            harness.send(vip_flow(i), flags=SYN)
        assert harness.nf.active_connections == {b: 3 for b in BACKENDS}

    def test_rst_releases_backend(self):
        harness = _Harness(LoadBalancerNf(vip=VIP, backends=BACKENDS))
        harness.send(vip_flow(1), flags=SYN)
        harness.send(vip_flow(1), flags=RST)
        assert sum(harness.nf.active_connections.values()) == 0

    def test_non_vip_traffic_dropped(self):
        harness = _Harness(LoadBalancerNf(vip=VIP, backends=BACKENDS))
        stray = vip_flow(1)._replace(dst_ip=SERVER_NET | 0x99)
        harness.send(stray, flags=SYN)
        assert harness.out == []
        assert harness.nf.drops_not_vip == 1

    def test_data_without_assignment_dropped(self):
        harness = _Harness(LoadBalancerNf(vip=VIP, backends=BACKENDS))
        harness.send(vip_flow(1), flags=ACK)
        assert harness.nf.drops_no_assignment == 1

    def test_needs_backends(self):
        with pytest.raises(ValueError):
            LoadBalancerNf(vip=VIP, backends=[])


class TestTrafficMonitor:
    def _run_connection(self, harness, f, data_packets=4):
        harness.send(f, flags=SYN)
        for seq in range(data_packets):
            harness.send(f, flags=ACK, seq=seq, payload_len=100)
        harness.send(f, flags=FIN | ACK)
        harness.send(f.reversed(), flags=FIN | ACK)

    def test_connection_lifecycle_logged(self):
        harness = _Harness(TrafficMonitorNf())
        self._run_connection(harness, vip_flow(1))
        assert harness.nf.connections_opened == 1
        assert harness.nf.connections_closed == 1
        assert len(harness.nf.connection_log) == 1

    def test_sharded_statistics_aggregate(self):
        harness = _Harness(TrafficMonitorNf())
        self._run_connection(harness, vip_flow(1), data_packets=6)
        totals = harness.nf.aggregate(harness.engine.contexts)
        assert totals["packets"] == 9  # SYN + 6 data + 2 FINs
        assert totals["bytes"] > 0

    def test_per_flow_bytes_merge_across_cores(self):
        harness = _Harness(TrafficMonitorNf())
        self._run_connection(harness, vip_flow(1), data_packets=8)
        merged = harness.nf.per_flow_bytes(harness.engine.contexts)
        assert vip_flow(1).canonical() in merged
        # Under spraying the shards live on several cores.
        shard_counts = sum(
            1 for ctx in harness.engine.contexts if ctx.local.get("per_flow")
        )
        assert shard_counts >= 2

    def test_rst_closes(self):
        harness = _Harness(TrafficMonitorNf())
        harness.send(vip_flow(2), flags=SYN)
        harness.send(vip_flow(2), flags=RST)
        assert harness.nf.connections_closed == 1


class TestRedundancyElimination:
    def test_duplicate_payload_shrinks_packet(self):
        harness = _Harness(RedundancyEliminationNf())
        payload = b"The quick brown fox jumps over the lazy dog" * 10
        first = harness.send(vip_flow(1), seq=0, payload=payload)
        second = harness.send(vip_flow(1), seq=1, payload=payload)
        assert harness.nf.hits == 1
        assert harness.nf.misses == 1
        assert second.frame_len < first.frame_len
        assert harness.nf.bytes_saved > 0

    def test_distinct_payloads_both_miss(self):
        harness = _Harness(RedundancyEliminationNf())
        harness.send(vip_flow(1), seq=0, payload=b"A" * 100)
        harness.send(vip_flow(1), seq=1, payload=b"B" * 100)
        assert harness.nf.misses == 2 and harness.nf.hits == 0

    def test_cross_flow_redundancy_detected(self):
        """The cache is global: duplicates across flows count."""
        harness = _Harness(RedundancyEliminationNf())
        payload = b"shared content here" * 8
        harness.send(vip_flow(1), payload=payload)
        harness.send(vip_flow(2), payload=payload)
        assert harness.nf.hits == 1

    def test_pure_acks_ignored(self):
        harness = _Harness(RedundancyEliminationNf())
        harness.send(vip_flow(1), flags=ACK, payload_len=0)
        assert harness.nf.hits == 0 and harness.nf.misses == 0

    def test_lru_eviction(self):
        harness = _Harness(RedundancyEliminationNf(cache_entries=2))
        harness.send(vip_flow(1), seq=0, payload=b"one" * 20)
        harness.send(vip_flow(1), seq=1, payload=b"two" * 20)
        harness.send(vip_flow(1), seq=2, payload=b"three" * 20)  # evicts "one"
        harness.send(vip_flow(1), seq=3, payload=b"one" * 20)
        assert harness.nf.hits == 0
        assert len(harness.nf.cache) == 2

    def test_stateless_flag_set(self):
        assert RedundancyEliminationNf.stateless
