"""Differential correctness of the SCR (state-compute replication) mode.

The tentpole claim: spraying *all* packets and replaying the per-flow
packet-history log on every core yields flow state byte-identical to
Sprayer's single-writer ground truth. Pinned down four ways:

1. A Hypothesis differential oracle drives the same randomized
   SYN/FIN/data interleaving through an SCR engine and a Sprayer
   engine; after :meth:`ScrReplication.converge`, *every* live SCR
   replica must read byte-identical to the single-writer state, and
   the NF verdicts (forwarded/dropped counts) must agree.
2. :func:`audit_determinism` digests per-core event streams across
   same-seed SCR runs — replay is a pure function of its seed.
3. The log machinery's lifecycle: append on accepted packets only
   (NIC rejections retract), truncation once every live core has
   applied+consumed a prefix, and crashed cores excluded from quorums.
4. The ``scr.*`` telemetry family exists exactly when the policy does.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks import audit_determinism
from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.core.nf import NetworkFunction
from repro.experiments.harness import run_open_loop
from repro.net import ACK, FIN, SYN, FiveTuple, make_tcp_packet
from repro.nfs import SyntheticNf
from repro.sim import MILLISECOND, Simulator

CONN_FLAGS = (SYN, FIN)


def flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


class CountingNf(NetworkFunction):
    """A stateful NF whose state is *order-sensitive* and which drops.

    Every connection packet bumps its flow's counter; every third one
    is dropped. Both the counter value and the drop verdict are pure
    functions of (state prefix, packet), which is exactly the contract
    SCR replay relies on — and what makes this NF a sharp oracle: any
    replay reordering, double-apply, or missed entry shows up as a
    diverged counter or a diverged verdict.
    """

    name = "counting"

    def connection_packets(self, packets, ctx):
        for packet in packets:
            f = packet.five_tuple
            entry = ctx.get_local_flow(f)
            if entry is None:
                ctx.insert_local_flow(f, {"conn": 1})
            else:
                entry["conn"] += 1
                if entry["conn"] % 3 == 0:
                    ctx.drop(packet)

    def regular_packets(self, packets, ctx):
        ctx.get_flows([packet.five_tuple for packet in packets])


def build_engine(mode: str, num_cores: int = 4, nf=None, strict: bool = True,
                 **config_kwargs):
    sim = Simulator()
    config = MiddleboxConfig(
        mode=mode,
        num_cores=num_cores,
        flow_director_pps_cap=None,  # the oracle premise is zero NIC drops
        **config_kwargs,
    )
    engine = MiddleboxEngine(
        sim, nf if nf is not None else CountingNf(), config, strict_checks=strict
    )
    engine.set_egress(lambda pkt: None)
    return sim, engine


def make_script(seed: int, n_flows: int, n_events: int):
    """A reproducible traffic script: (flow index, flags, seq, checksum).

    Starts with one SYN per flow, then a random interleaving of
    connection (SYN/FIN) and data packets, paced with periodic
    simulator advances (``("run",)`` markers) so queues drain and the
    zero-NIC-drop premise of the differential oracle holds.
    """
    rng = random.Random(seed)
    events = [(i, SYN, 0, rng.getrandbits(16)) for i in range(n_flows)]
    events.append(("run",))
    for step in range(n_events):
        i = rng.randrange(n_flows)
        if rng.random() < 0.4:
            events.append((i, rng.choice(CONN_FLAGS), 0, rng.getrandbits(16)))
        else:
            events.append((i, ACK, step, rng.getrandbits(16)))
        if rng.random() < 0.25:
            events.append(("run",))
    events.append(("run",))
    return events


def drive_script(sim, engine, events) -> None:
    for event in events:
        if event[0] == "run":
            sim.run(until=sim.now + MILLISECOND)
            continue
        i, flags, seq, checksum = event
        packet = make_tcp_packet(
            flow(i), flags=flags, seq=seq, tcp_checksum=checksum
        )
        engine.receive(packet, sim.now)
    sim.run(until=sim.now + 5 * MILLISECOND)


def canonical_state(pairs) -> str:
    """Sorted, JSON-canonical rendering of (flow_id, entry) pairs."""
    return json.dumps(sorted((repr(k), v) for k, v in pairs), sort_keys=True)


class TestDifferentialOracle:
    """SCR replicas vs Sprayer single-writer ground truth."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        num_cores=st.integers(min_value=2, max_value=6),
        n_flows=st.integers(min_value=1, max_value=5),
    )
    def test_replicas_match_single_writer_ground_truth(self, seed, num_cores, n_flows):
        events = make_script(seed, n_flows, n_events=40)

        truth_sim, truth = build_engine("sprayer", num_cores=num_cores)
        drive_script(truth_sim, truth, events)
        assert truth.conservation()["rx_packets"] == truth.conservation()["accounted"]
        truth_state = canonical_state(truth.flow_state.entries_snapshot())

        scr_sim, scr = build_engine("scr", num_cores=num_cores)
        drive_script(scr_sim, scr, events)
        conservation = scr.conservation()
        assert conservation["rx_packets"] == conservation["accounted"]
        # Oracle premise: the NIC dropped nothing on either engine.
        for engine in (truth, scr):
            summary = engine.summary()
            assert summary["rx_dropped_queue_full"] == 0
            assert summary["rx_dropped_fd_cap"] == 0

        scr.policy.replication.converge(scr)
        for core_id in range(num_cores):
            replica = canonical_state(scr.flow_state.replica_snapshot(core_id))
            assert replica == truth_state, f"replica {core_id} diverged"

        # Same verdicts: identical forwarded and NF-dropped totals.
        assert scr.stats.packets_forwarded == truth.stats.packets_forwarded
        assert scr.stats.packets_dropped_nf == truth.stats.packets_dropped_nf
        # Replicated single-writer discipline held throughout.
        assert scr.checks.ownership.violations == 0
        # And no ring ever moved a descriptor under SCR.
        assert scr.stats.transfers == 0

    def test_verdict_cache_applies_recorded_drops(self):
        """A sync can replay an entry before its real packet surfaces;
        the recorded verdict must then reach the real packet."""
        sim, engine = build_engine("scr", num_cores=2)
        events = [(0, SYN, 0, 7)]
        # Two more conn packets: the third bumps the counter to 3 -> drop.
        events += [(0, FIN, 0, 11), (0, FIN, 0, 13), ("run",)]
        # Data packets on both queues force every core to sync flow 0.
        events += [(0, ACK, s, s * 37 % 65536) for s in range(16)]
        events.append(("run",))
        drive_script(sim, engine, events)
        assert engine.stats.packets_dropped_nf == 1
        conservation = engine.conservation()
        assert conservation["rx_packets"] == conservation["accounted"]


class TestScrDeterminism:
    def test_same_seed_runs_have_identical_stream_digests(self):
        def run():
            sim, engine = build_engine("scr", num_cores=4)
            drive_script(sim, engine, make_script(seed=9, n_flows=3, n_events=48))
            return engine

        digests = audit_determinism(run, runs=3)
        assert any(digests), "expected at least one non-zero core digest"

    def test_byte_identical_rerun_via_open_loop(self):
        kwargs = dict(
            nf_cycles=800, num_flows=6, offered_pps=2e6,
            duration=2 * MILLISECOND, warmup=500_000_000, seed=5,
        )
        first = run_open_loop("scr", **kwargs)
        second = run_open_loop("scr", **kwargs)
        assert json.dumps(first.engine_summary, sort_keys=True, default=repr) == \
            json.dumps(second.engine_summary, sort_keys=True, default=repr)


class TestLogLifecycle:
    def test_truncation_waits_for_every_live_core(self):
        sim, engine = build_engine("scr", num_cores=4, nf=SyntheticNf(0))
        engine.receive(make_tcp_packet(flow(1), flags=SYN, tcp_checksum=3), sim.now)
        sim.run(until=sim.now + MILLISECOND)
        replication = engine.policy.replication
        # The arrival core consumed it, but three replicas lag behind.
        assert replication.log_appends == 1
        assert replication.log_depth() == 1
        assert replication.truncated_entries == 0
        replication.converge(engine)
        assert replication.log_depth() == 0
        assert replication.truncated_entries == 1
        # Converge replayed the SYN on every non-arrival core.
        assert replication.replayed_packets == engine.config.num_cores - 1

    def test_crashed_cores_do_not_wedge_truncation(self):
        sim, engine = build_engine("scr", num_cores=4, nf=SyntheticNf(0))
        engine.crash_core(2)
        engine.receive(make_tcp_packet(flow(1), flags=SYN, tcp_checksum=2), sim.now)
        sim.run(until=sim.now + MILLISECOND)
        replication = engine.policy.replication
        replication.converge(engine)
        # Core 2 never applied anything, yet the prefix truncated.
        assert replication.log_depth() == 0
        assert replication.truncated_entries == 1

    def test_nic_rejections_retract_their_log_entries(self):
        sim, engine = build_engine("scr", num_cores=4, nf=SyntheticNf(0))
        # Kill a core *without* resteering: its queue keeps its share of
        # the spray rules and drops every arrival (kind core_dead).
        engine.crash_core(1, resteer=False)
        rng = random.Random(17)
        sent = 64
        for i in range(sent):
            packet = make_tcp_packet(
                flow(i), flags=SYN, tcp_checksum=rng.getrandbits(16)
            )
            engine.receive(packet, sim.now)
            sim.run(until=sim.now + 100_000_000)
        sim.run(until=sim.now + 5 * MILLISECOND)
        dropped = engine.nic.stats.rx_dropped_fault
        assert dropped > 0, "expected some SYNs to hit the dead queue"
        replication = engine.policy.replication
        assert replication.log_appends == sent - dropped
        assert not replication._pending
        conservation = engine.conservation()
        assert conservation["rx_packets"] == conservation["accounted"]

    def test_stateless_nf_disables_replication(self):
        class StatelessNf(NetworkFunction):
            name = "null"
            stateless = True

            def regular_packets(self, packets, ctx):
                pass

        sim, engine = build_engine("scr", nf=StatelessNf(), strict=False)
        assert engine._scr is None
        engine.receive(make_tcp_packet(flow(1), flags=SYN, tcp_checksum=1), sim.now)
        sim.run(until=sim.now + MILLISECOND)
        assert engine.stats.packets_forwarded == 1

    def test_explicit_foreign_backend_rejected(self):
        with pytest.raises(ValueError, match="replicates state"):
            build_engine("scr", state_backend="shared")


class TestScrTelemetry:
    RUN_KWARGS = dict(
        nf_cycles=500, num_flows=8, offered_pps=2e6,
        duration=2 * MILLISECOND, warmup=500_000_000, seed=3,
    )

    def test_scr_counter_family_present_and_consistent(self):
        result = run_open_loop("scr", **self.RUN_KWARGS)
        counters = result.telemetry["counters"]
        assert counters["scr.log.appends"] >= 8  # one SYN per flow
        assert counters["scr.replay.packets"] > 0
        assert counters["scr.log.depth"] >= 0
        assert counters["scr.log.flows"] >= 8
        # Depth is exactly what was appended and not yet truncated.
        assert counters["scr.log.depth"] == (
            counters["scr.log.appends"] - counters["scr.log.truncated"]
        )

    def test_other_modes_have_no_scr_family(self):
        for mode in ("rss", "sprayer"):
            result = run_open_loop(mode, **self.RUN_KWARGS)
            assert not any(
                name.startswith("scr.") for name in result.telemetry["counters"]
            )
