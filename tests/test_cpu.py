"""Unit tests for cores, the cost model, and the coherence model."""

import pytest

from repro.cpu.cache import CoherenceModel
from repro.cpu.core import BatchResult, Core
from repro.cpu.costs import CostModel
from repro.cpu.host import Host
from repro.net import FiveTuple, make_tcp_packet
from repro.nic import MultiQueueNic, NicConfig
from repro.nic.queues import RxQueue
from repro.sim import MILLISECOND, SECOND, Simulator

FLOW = FiveTuple(0x0A000001, 0x0A010001, 1234, 80, 6)


class TestCostModel:
    def test_cycles_to_ps_at_2ghz(self):
        costs = CostModel(clock_hz=2.0e9)
        assert costs.cycles_to_ps(1) == 500
        assert costs.cycles_to_ps(10000) == 5_000_000  # 5 us

    def test_base_packet_cycles_anchor(self):
        """~170 base cycles -> one core forwards ~11-12 Mpps, the
        Figure 6(a) zero-cycles anchor."""
        costs = CostModel()
        rate = costs.single_core_rate_pps(0)
        assert 10e6 < rate < 13e6

    def test_rate_at_10k_cycles_anchor(self):
        """10k cycles/packet -> ~0.197 Mpps/core (Figure 6a right edge)."""
        costs = CostModel()
        rate = costs.single_core_rate_pps(10000)
        assert 0.19e6 < rate < 0.21e6


class TestCoherence:
    def test_owner_reads_are_local(self):
        costs = CostModel()
        model = CoherenceModel(costs)
        model.write(0, "flow")
        assert model.read(0, "flow") == costs.flow_lookup_local
        assert model.stats.local_reads == 1

    def test_foreign_read_pays_transfer_once(self):
        costs = CostModel()
        model = CoherenceModel(costs)
        model.write(0, "flow")
        assert model.read(1, "flow") == costs.remote_read
        # Second read hits the local clean copy.
        assert model.read(1, "flow") == costs.flow_lookup_local

    def test_write_invalidates_sharers(self):
        costs = CostModel()
        model = CoherenceModel(costs)
        model.write(0, "flow")
        model.read(1, "flow")
        # Writing again while core 1 holds a copy invalidates it.
        assert model.write(0, "flow") == costs.cache_invalidation
        # ... and core 1 must re-fetch.
        assert model.read(1, "flow") == costs.remote_read

    def test_foreign_write_pays_invalidation(self):
        costs = CostModel()
        model = CoherenceModel(costs)
        model.write(0, "flow")
        assert model.write(1, "flow") == costs.cache_invalidation
        assert model.stats.invalidating_writes == 1

    def test_single_writer_never_pays_invalidation(self):
        """Sprayer's writing partition in coherence terms."""
        costs = CostModel()
        model = CoherenceModel(costs)
        for _ in range(10):
            assert model.write(2, "flow") == costs.flow_lookup_local
        assert model.stats.invalidating_writes == 0

    def test_forget_clears_ownership(self):
        costs = CostModel()
        model = CoherenceModel(costs)
        model.write(0, "flow")
        model.forget("flow")
        assert model.write(1, "flow") == costs.flow_lookup_local


class TestCore:
    def _make_core(self, sim, processor, batch_size=32):
        core = Core(sim, core_id=0, costs=CostModel(), batch_size=batch_size)
        core.rx_queue = RxQueue(0, capacity=64)
        core.rx_queue.on_first_packet = core.wake
        core.processor = processor
        return core

    def test_core_processes_batch_after_cycle_cost(self):
        sim = Simulator()
        outputs = []

        def processor(core, foreign, local):
            return BatchResult(cycles=2000, outputs=list(local))

        core = self._make_core(sim, processor)
        core.on_output = outputs.append
        packet = make_tcp_packet(FLOW)
        core.rx_queue.push(packet)
        core.wake()
        assert core.busy
        sim.run()
        assert outputs == [packet]
        assert packet.done_time == CostModel().cycles_to_ps(2000)
        assert packet.processed_core == 0

    def test_batch_size_respected(self):
        sim = Simulator()
        batches = []

        def processor(core, foreign, local):
            batches.append(len(local))
            return BatchResult(cycles=100, outputs=list(local))

        core = self._make_core(sim, processor, batch_size=4)
        core.rx_queue.on_first_packet = None  # fill first, wake once
        core.on_output = lambda p: None
        for i in range(10):
            core.rx_queue.push(make_tcp_packet(FLOW, seq=i))
        core.wake()
        sim.run()
        assert batches == [4, 4, 2]

    def test_busy_core_ignores_wake(self):
        sim = Simulator()

        def processor(core, foreign, local):
            return BatchResult(cycles=1000, outputs=list(local))

        core = self._make_core(sim, processor)
        core.on_output = lambda p: None
        core.rx_queue.push(make_tcp_packet(FLOW))
        core.wake()
        # Wake again while busy: must not start a nested batch.
        core.wake()
        assert core.stats.batches == 1
        sim.run()

    def test_back_to_back_batches_drain_queue(self):
        sim = Simulator()

        def processor(core, foreign, local):
            return BatchResult(cycles=500, outputs=list(local))

        core = self._make_core(sim, processor, batch_size=2)
        core.rx_queue.on_first_packet = None  # fill first, wake once
        outputs = []
        core.on_output = outputs.append
        for i in range(6):
            core.rx_queue.push(make_tcp_packet(FLOW, seq=i))
        core.wake()
        sim.run()
        assert len(outputs) == 6
        assert core.stats.batches == 3

    def test_utilization_accounting(self):
        sim = Simulator()

        def processor(core, foreign, local):
            return BatchResult(cycles=2000, outputs=list(local))

        core = self._make_core(sim, processor)
        core.on_output = lambda p: None
        core.rx_queue.push(make_tcp_packet(FLOW))
        core.wake()
        sim.run()
        busy = CostModel().cycles_to_ps(2000)
        assert core.stats.busy_time_ps == busy
        assert core.utilization(2 * busy) == pytest.approx(0.5)

    def test_transfers_require_hook(self):
        sim = Simulator()

        def processor(core, foreign, local):
            return BatchResult(cycles=10, outputs=[], transfers=[(1, local[0])])

        core = self._make_core(sim, processor)
        core.rx_queue.push(make_tcp_packet(FLOW))
        core.wake()
        with pytest.raises(RuntimeError):
            sim.run()

    def test_missing_processor_raises(self):
        sim = Simulator()
        core = Core(sim, 0, CostModel())
        core.rx_queue = RxQueue(0)
        core.rx_queue.push(make_tcp_packet(FLOW))
        with pytest.raises(RuntimeError):
            core.wake()


class TestHost:
    def test_wiring_queue_to_core(self):
        sim = Simulator()
        nic = MultiQueueNic(NicConfig(num_queues=4))
        host = Host(sim, nic)
        assert host.num_cores == 4
        for core, queue in zip(host.cores, nic.queues):
            assert core.rx_queue is queue
            assert queue.on_first_packet is not None

    def test_receive_counts_and_wakes(self):
        sim = Simulator()
        nic = MultiQueueNic(NicConfig(num_queues=2))
        host = Host(sim, nic)
        outputs = []
        for core in host.cores:
            core.processor = lambda c, f, l: BatchResult(cycles=100, outputs=list(l))
        host.set_egress(outputs.append)
        host.receive(make_tcp_packet(FLOW), now=0)
        sim.run()
        assert host.packets_in == 1
        assert host.packets_out == 1
        assert len(outputs) == 1
