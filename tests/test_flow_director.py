"""Unit tests for the Flow Director model and the checksum-spray rules."""

import random

import pytest

from repro.net import FiveTuple, make_tcp_packet, make_udp_packet
from repro.net.five_tuple import PROTO_TCP, PROTO_UDP
from repro.nic.flow_director import (
    FLOW_DIRECTOR_CAPACITY,
    FlowDirectorRule,
    FlowDirectorTable,
    build_checksum_spray_rules,
    spray_bits_for,
)

TCP_FLOW = FiveTuple(0x0A000001, 0x0A010001, 1234, 80, PROTO_TCP)
UDP_FLOW = FiveTuple(0x0A000001, 0x0A010001, 1234, 53, PROTO_UDP)


class TestRules:
    def test_rule_matches_masked_field(self):
        rule = FlowDirectorRule(field="tcp_checksum", mask=0xFF, value=0x42, queue=3)
        hit = make_tcp_packet(TCP_FLOW, tcp_checksum=0x1342)
        miss = make_tcp_packet(TCP_FLOW, tcp_checksum=0x1343)
        assert rule.matches(hit)
        assert not rule.matches(miss)

    def test_rule_is_protocol_scoped(self):
        rule = FlowDirectorRule(field="dst_port", mask=0xFFFF, value=53, queue=1)
        udp = make_udp_packet(UDP_FLOW)
        assert not rule.matches(udp)  # rule defaults to TCP

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            FlowDirectorRule(field="tcp_checksum", mask=0x0F, value=0x10, queue=0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            FlowDirectorRule(field="ttl", mask=0xFF, value=1, queue=0)


class TestTable:
    def test_match_returns_queue(self):
        table = FlowDirectorTable()
        table.add_rule(FlowDirectorRule(field="tcp_checksum", mask=0x3, value=0x2, queue=5))
        packet = make_tcp_packet(TCP_FLOW, tcp_checksum=0xABCE)  # LSBs 0b10
        assert table.match(packet) == 5

    def test_no_match_returns_none(self):
        table = FlowDirectorTable()
        table.add_rule(FlowDirectorRule(field="tcp_checksum", mask=0x3, value=0x2, queue=5))
        packet = make_tcp_packet(TCP_FLOW, tcp_checksum=0xABCD)  # LSBs 0b01
        assert table.match(packet) is None

    def test_capacity_enforced(self):
        table = FlowDirectorTable(capacity=4)
        for value in range(4):
            table.add_rule(FlowDirectorRule(field="tcp_checksum", mask=0x7, value=value, queue=0))
        with pytest.raises(OverflowError):
            table.add_rule(FlowDirectorRule(field="tcp_checksum", mask=0x7, value=5, queue=0))

    def test_reinstall_same_match_does_not_consume_capacity(self):
        table = FlowDirectorTable(capacity=1)
        table.add_rule(FlowDirectorRule(field="tcp_checksum", mask=0x1, value=0, queue=0))
        table.add_rule(FlowDirectorRule(field="tcp_checksum", mask=0x1, value=0, queue=7))
        packet = make_tcp_packet(TCP_FLOW, tcp_checksum=0x2)
        assert table.match(packet) == 7
        assert len(table) == 1

    def test_clear(self):
        table = FlowDirectorTable()
        table.add_rules(build_checksum_spray_rules(4, bits=4))
        table.clear()
        assert len(table) == 0
        assert table.match(make_tcp_packet(TCP_FLOW, tcp_checksum=1)) is None

    def test_real_capacity_is_8k(self):
        assert FLOW_DIRECTOR_CAPACITY == 8192


class TestSprayRules:
    def test_rules_exhaust_all_masked_values(self):
        """The paper's trick: every TCP packet must match some rule."""
        rules = build_checksum_spray_rules(8, bits=6)
        assert len(rules) == 64
        table = FlowDirectorTable()
        table.add_rules(rules)
        rng = random.Random(3)
        for _ in range(500):
            packet = make_tcp_packet(TCP_FLOW, tcp_checksum=rng.getrandbits(16))
            assert table.match(packet) is not None

    def test_non_tcp_packets_never_match(self):
        table = FlowDirectorTable()
        table.add_rules(build_checksum_spray_rules(8))
        assert table.match(make_udp_packet(UDP_FLOW)) is None

    def test_rules_cover_all_queues_evenly(self):
        rules = build_checksum_spray_rules(8, bits=6)
        per_queue = {}
        for rule in rules:
            per_queue[rule.queue] = per_queue.get(rule.queue, 0) + 1
        assert set(per_queue) == set(range(8))
        assert all(count == 8 for count in per_queue.values())

    def test_random_checksums_spread_uniformly(self):
        table = FlowDirectorTable()
        table.add_rules(build_checksum_spray_rules(8))
        rng = random.Random(1)
        counts = [0] * 8
        total = 8000
        for _ in range(total):
            packet = make_tcp_packet(TCP_FLOW, tcp_checksum=rng.getrandbits(16))
            counts[table.match(packet)] += 1
        for count in counts:
            assert abs(count - total / 8) < total / 8 * 0.25

    def test_bits_respect_flow_director_capacity(self):
        with pytest.raises(ValueError):
            build_checksum_spray_rules(8, bits=14)  # 2^14 > 8192

    def test_bits_must_cover_queue_count(self):
        with pytest.raises(ValueError):
            build_checksum_spray_rules(8, bits=2)  # 4 values < 8 queues

    def test_spray_bits_for_defaults(self):
        assert spray_bits_for(8) == 8  # 3 needed + 5 extra
        assert spray_bits_for(8, extra_bits=0) == 3
        assert 2 ** spray_bits_for(256) <= FLOW_DIRECTOR_CAPACITY

    def test_non_power_of_two_queue_counts_work(self):
        rules = build_checksum_spray_rules(6, bits=8)
        queues = {rule.queue for rule in rules}
        assert queues == set(range(6))
