"""Determinism regressions: same seed, byte-identical results.

Three guarantees future perf refactors must not break:

1. A run is a pure function of (seed, config): rebuilding the engine
   and replaying produces byte-identical ``summary()`` and telemetry
   dumps.
2. Telemetry is a pure observer: turning sampling/tracing on or off
   changes no experiment result values.
3. The executor backend is invisible: a sweep produces byte-identical
   rows and telemetry whether it runs serially or on a process pool,
   at any job count.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fig6 import fig6a_sweep
from repro.experiments.fig7 import fig7a_sweep
from repro.experiments.harness import run_open_loop
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import Scenario
from repro.faults import FaultPlan, core_slow
from repro.faults.study import run_resilience
from repro.sim import MILLISECOND

RUN_KWARGS = dict(
    nf_cycles=2000,
    num_flows=8,
    duration=4 * MILLISECOND,
    warmup=1 * MILLISECOND,
    seed=5,
)


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True)


class TestSameSeedByteIdentical:
    def test_summary_and_telemetry_dumps_identical(self):
        first = run_open_loop("sprayer", **RUN_KWARGS)
        second = run_open_loop("sprayer", **RUN_KWARGS)
        assert first.rate_mpps == second.rate_mpps
        assert canonical(first.engine_summary) == canonical(second.engine_summary)
        assert canonical(first.telemetry) == canonical(second.telemetry)

    def test_trace_dumps_identical(self):
        first = run_open_loop("rss", telemetry_trace=True, **RUN_KWARGS)
        second = run_open_loop("rss", telemetry_trace=True, **RUN_KWARGS)
        assert canonical(first.telemetry) == canonical(second.telemetry)
        assert first.telemetry["trace"], "expected trace events"

    def test_different_seeds_differ(self):
        """Sanity: the comparison above is not vacuous."""
        kwargs = dict(RUN_KWARGS)
        first = run_open_loop("sprayer", **kwargs)
        kwargs["seed"] = 6
        second = run_open_loop("sprayer", **kwargs)
        assert canonical(first.telemetry) != canonical(second.telemetry)


class TestBackendsAreEquivalent:
    """Serial vs ``jobs=2`` runs of the same sweep: byte-identical."""

    def _sweeps(self):
        yield fig6a_sweep(cycles_sweep=(0, 2500), duration=3 * MILLISECOND,
                          warmup=1 * MILLISECOND, seeds=(1, 2))
        yield fig7a_sweep(flow_sweep=(1, 8), duration=3 * MILLISECOND,
                          warmup=1 * MILLISECOND)

    def test_rows_byte_identical_across_backends(self):
        for sweep in self._sweeps():
            serial = sweep.run(SweepRunner(jobs=1))
            parallel = sweep.run(SweepRunner(jobs=2))
            assert canonical(serial) == canonical(parallel), sweep.name

    def test_telemetry_travels_through_futures(self):
        """Both backends capture one record per point, in canonical
        order, with identical dumps — the process pool ships them back
        inside each future's result."""
        for sweep in self._sweeps():
            serial_runner = SweepRunner(jobs=1, capture_telemetry=True)
            parallel_runner = SweepRunner(jobs=2, capture_telemetry=True)
            sweep.run(serial_runner)
            sweep.run(parallel_runner)
            assert len(serial_runner.telemetry) == len(sweep)
            assert len(parallel_runner.telemetry) == len(sweep)
            assert canonical(serial_runner.telemetry) == canonical(
                parallel_runner.telemetry
            ), sweep.name

    def test_capture_off_collects_nothing(self):
        sweep = next(iter(self._sweeps()))
        runner = SweepRunner(jobs=1)
        sweep.run(runner)
        assert runner.telemetry == []


class TestEmptyFaultPlanIsIdentity:
    """An empty FaultPlan attached to a run is a strict no-op: the
    injector schedules nothing, binds nothing, draws no randomness —
    results are byte-identical to a run with no injector at all."""

    @settings(max_examples=6, deadline=None)
    @given(
        mode=st.sampled_from(("rss", "sprayer", "flowlet")),
        seed=st.integers(min_value=1, max_value=1000),
    )
    def test_empty_plan_matches_no_injector_run(self, mode, seed):
        kwargs = dict(
            nf_cycles=2000, num_flows=8, duration=2 * MILLISECOND,
            warmup=1 * MILLISECOND, seed=seed,
        )
        plain = run_open_loop(mode, **kwargs)
        faultless = run_resilience(mode, plan=FaultPlan(), **kwargs)
        assert faultless.rate_mpps == plain.rate_mpps
        assert faultless.p99_latency_us == plain.p99_latency_us
        assert canonical(faultless.engine_summary) == canonical(plain.engine_summary)
        assert canonical(faultless.telemetry) == canonical(plain.telemetry)

    def _resilience_points(self, plan):
        return [
            Scenario.make(
                "resilience", label="det", mode=mode, nf_cycles=2000,
                num_flows=8, duration=3 * MILLISECOND, warmup=1 * MILLISECOND,
                seed=5, fault_plan=plan,
            )
            for mode in ("rss", "sprayer")
        ]

    def test_resilience_points_identical_at_any_jobs_count(self):
        """Serial vs --jobs 2, with both an empty and a non-empty plan:
        the plan pickles into the scenario params and the worker
        reproduces the parent's run byte for byte."""
        plans = (
            FaultPlan(),
            FaultPlan.of(
                core_slow(0, 1 * MILLISECOND, 2 * MILLISECOND, factor=8.0), seed=5
            ),
        )
        for plan in plans:
            serial_runner = SweepRunner(jobs=1, capture_telemetry=True)
            parallel_runner = SweepRunner(jobs=2, capture_telemetry=True)
            serial = serial_runner.run(self._resilience_points(plan))
            parallel = parallel_runner.run(self._resilience_points(plan))
            assert canonical([r.values for r in serial]) == canonical(
                [r.values for r in parallel]
            )
            assert canonical(serial_runner.telemetry) == canonical(
                parallel_runner.telemetry
            )

    def test_faulted_run_differs_from_faultless(self):
        """Sanity: the identity comparison is not vacuous."""
        kwargs = dict(
            nf_cycles=2000, num_flows=8, duration=3 * MILLISECOND,
            warmup=1 * MILLISECOND, seed=5,
        )
        plan = FaultPlan.of(
            core_slow(0, 1 * MILLISECOND, 2 * MILLISECOND, factor=8.0)
        )
        faultless = run_resilience("rss", plan=FaultPlan(), **kwargs)
        faulted = run_resilience("rss", plan=plan, **kwargs)
        assert canonical(faulted.engine_summary) != canonical(
            faultless.engine_summary
        )


class TestTelemetryIsAPureObserver:
    def test_results_identical_with_telemetry_on_and_off(self):
        off = run_open_loop(
            "sprayer",
            telemetry_sample_interval=None,
            telemetry_trace=False,
            **RUN_KWARGS,
        )
        on = run_open_loop(
            "sprayer",
            telemetry_sample_interval=100_000_000,  # 100 us
            telemetry_trace=True,
            **RUN_KWARGS,
        )
        assert on.rate_mpps == off.rate_mpps
        assert on.rate_gbps == off.rate_gbps
        assert on.p99_latency_us == off.p99_latency_us
        # The whole summary — counters included — must be byte-identical;
        # sampling and tracing only add observations, never perturb them.
        assert canonical(on.engine_summary) == canonical(off.engine_summary)
        assert on.telemetry["series"] and on.telemetry["trace"]
        assert off.telemetry["series"] == [] and off.telemetry["trace"] == []
