"""Determinism regressions: same seed, byte-identical results.

Two guarantees future perf refactors must not break:

1. A run is a pure function of (seed, config): rebuilding the engine
   and replaying produces byte-identical ``summary()`` and telemetry
   dumps.
2. Telemetry is a pure observer: turning sampling/tracing on or off
   changes no experiment result values.
"""

import json

from repro.experiments.harness import run_open_loop
from repro.sim import MILLISECOND

RUN_KWARGS = dict(
    nf_cycles=2000,
    num_flows=8,
    duration=4 * MILLISECOND,
    warmup=1 * MILLISECOND,
    seed=5,
)


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True)


class TestSameSeedByteIdentical:
    def test_summary_and_telemetry_dumps_identical(self):
        first = run_open_loop("sprayer", **RUN_KWARGS)
        second = run_open_loop("sprayer", **RUN_KWARGS)
        assert first.rate_mpps == second.rate_mpps
        assert canonical(first.engine_summary) == canonical(second.engine_summary)
        assert canonical(first.telemetry) == canonical(second.telemetry)

    def test_trace_dumps_identical(self):
        first = run_open_loop("rss", telemetry_trace=True, **RUN_KWARGS)
        second = run_open_loop("rss", telemetry_trace=True, **RUN_KWARGS)
        assert canonical(first.telemetry) == canonical(second.telemetry)
        assert first.telemetry["trace"], "expected trace events"

    def test_different_seeds_differ(self):
        """Sanity: the comparison above is not vacuous."""
        kwargs = dict(RUN_KWARGS)
        first = run_open_loop("sprayer", **kwargs)
        kwargs["seed"] = 6
        second = run_open_loop("sprayer", **kwargs)
        assert canonical(first.telemetry) != canonical(second.telemetry)


class TestTelemetryIsAPureObserver:
    def test_results_identical_with_telemetry_on_and_off(self):
        off = run_open_loop(
            "sprayer",
            telemetry_sample_interval=None,
            telemetry_trace=False,
            **RUN_KWARGS,
        )
        on = run_open_loop(
            "sprayer",
            telemetry_sample_interval=100_000_000,  # 100 us
            telemetry_trace=True,
            **RUN_KWARGS,
        )
        assert on.rate_mpps == off.rate_mpps
        assert on.rate_gbps == off.rate_gbps
        assert on.p99_latency_us == off.p99_latency_us
        # The whole summary — counters included — must be byte-identical;
        # sampling and tracing only add observations, never perturb them.
        assert canonical(on.engine_summary) == canonical(off.engine_summary)
        assert on.telemetry["series"] and on.telemetry["trace"]
        assert off.telemetry["series"] == [] and off.telemetry["trace"] == []
