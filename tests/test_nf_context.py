"""Unit tests for the NfContext facade (Table 2 + accounting verbs)."""

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine, NetworkFunction, WritingPartitionError
from repro.net import FiveTuple, make_tcp_packet
from repro.sim import Simulator


def flow(i: int = 1) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 10000 + i, 80, 6)


@pytest.fixture()
def engine():
    sim = Simulator()
    return MiddleboxEngine(sim, NetworkFunction(), MiddleboxConfig(mode="sprayer", num_cores=4))


def ctx_for(engine, core_id):
    return engine.contexts[core_id]


class TestFlowStateFacade:
    def test_insert_and_get_roundtrip(self, engine):
        f = flow()
        designated = engine.designated_core(f)
        ctx = ctx_for(engine, designated)
        ctx.begin_batch()
        ctx.insert_local_flow(f, {"v": 7})
        assert ctx.get_local_flow(f) == {"v": 7}
        other = ctx_for(engine, (designated + 1) % 4)
        other.begin_batch()
        assert other.get_flow(f) == {"v": 7}

    def test_wrong_core_insert_raises(self, engine):
        f = flow()
        wrong = (engine.designated_core(f) + 1) % 4
        ctx = ctx_for(engine, wrong)
        ctx.begin_batch()
        with pytest.raises(WritingPartitionError):
            ctx.insert_local_flow(f, {})

    def test_cycle_accounting_accumulates(self, engine):
        f = flow()
        ctx = ctx_for(engine, engine.designated_core(f))
        ctx.begin_batch()
        ctx.insert_local_flow(f, {})
        ctx.consume_cycles(123)
        total = ctx.end_batch()
        assert total >= 123 + engine.costs.flow_insert

    def test_begin_batch_resets(self, engine):
        ctx = ctx_for(engine, 0)
        ctx.begin_batch()
        ctx.consume_cycles(50)
        ctx.begin_batch()
        assert ctx.end_batch() == 0

    def test_negative_cycles_rejected(self, engine):
        ctx = ctx_for(engine, 0)
        with pytest.raises(ValueError):
            ctx.consume_cycles(-1)

    def test_get_flows_returns_aligned_list(self, engine):
        flows = [flow(i) for i in range(6)]
        for f in flows:
            designated_ctx = ctx_for(engine, engine.designated_core(f))
            designated_ctx.begin_batch()
            designated_ctx.insert_local_flow(f, f.src_port)
        ctx = ctx_for(engine, 0)
        ctx.begin_batch()
        entries = ctx.get_flows(flows)
        assert entries == [f.src_port for f in flows]

    def test_remove(self, engine):
        f = flow()
        ctx = ctx_for(engine, engine.designated_core(f))
        ctx.begin_batch()
        ctx.insert_local_flow(f, {})
        assert ctx.remove_local_flow(f)
        assert ctx.get_local_flow(f) is None


class TestPacketVerbs:
    def test_drop_marks_packet(self, engine):
        ctx = ctx_for(engine, 0)
        ctx.begin_batch()
        packet = make_tcp_packet(flow())
        assert not ctx.is_dropped(packet)
        ctx.drop(packet)
        assert ctx.is_dropped(packet)

    def test_drop_cleared_next_batch(self, engine):
        ctx = ctx_for(engine, 0)
        ctx.begin_batch()
        packet = make_tcp_packet(flow())
        ctx.drop(packet)
        ctx.begin_batch()
        assert not ctx.is_dropped(packet)

    def test_update_header_rewrites_and_charges(self, engine):
        ctx = ctx_for(engine, 0)
        ctx.begin_batch()
        packet = make_tcp_packet(flow())
        new_tuple = flow(2)
        ctx.update_header(packet, new_tuple)
        assert packet.five_tuple == new_tuple
        assert ctx.end_batch() == engine.costs.header_update


class TestGlobalState:
    def test_strict_global_write_charges_lock(self, engine):
        ctx = ctx_for(engine, 0)
        ctx.begin_batch()
        ctx.write_global("pool")
        assert ctx.end_batch() >= engine.costs.lock_cycles

    def test_relaxed_access_is_cheap(self, engine):
        ctx = ctx_for(engine, 0)
        ctx.begin_batch()
        ctx.write_global("stats", relaxed=True)
        relaxed_cost = ctx.end_batch()
        ctx.begin_batch()
        ctx.write_global("stats")
        strict_cost = ctx.end_batch()
        assert relaxed_cost < strict_cost

    def test_global_reads_bounce_between_writers(self, engine):
        a, b = ctx_for(engine, 0), ctx_for(engine, 1)
        a.begin_batch()
        b.begin_batch()
        a.write_global("shared")
        first = b.end_batch()
        b.read_global("shared")
        assert b.end_batch() >= engine.costs.remote_read

    def test_now_tracks_simulator(self, engine):
        ctx = ctx_for(engine, 0)
        assert ctx.now == engine.sim.now

    def test_designated_core_helper(self, engine):
        f = flow()
        ctx = ctx_for(engine, 0)
        assert ctx.designated_core(f) == engine.designated_core(f)
