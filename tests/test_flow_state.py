"""Unit tests for flow tables and the writing-partition discipline."""

import pytest

from repro.core.designated import DesignatedCoreMap
from repro.core.flow_state import (
    FlowTable,
    FlowTableFullError,
    PartitionedFlowState,
    SharedFlowState,
    WritingPartitionError,
)
from repro.cpu.cache import CoherenceModel
from repro.cpu.costs import CostModel
from repro.net import FiveTuple

COSTS = CostModel()


def flow(i: int) -> FiveTuple:
    return FiveTuple(0x0A000000 + i, 0x0A010000 + i, 1000 + i, 80, 6)


class TestFlowTable:
    def test_insert_get_remove(self):
        table = FlowTable(0)
        table.insert(flow(1), {"x": 1})
        assert table.get(flow(1)) == {"x": 1}
        assert table.remove(flow(1))
        assert table.get(flow(1)) is None

    def test_remove_missing_returns_false(self):
        assert not FlowTable(0).remove(flow(1))

    def test_capacity_enforced(self):
        table = FlowTable(0, capacity=2)
        table.insert(flow(1), "a")
        table.insert(flow(2), "b")
        with pytest.raises(FlowTableFullError):
            table.insert(flow(3), "c")

    def test_overwrite_does_not_hit_capacity(self):
        table = FlowTable(0, capacity=1)
        table.insert(flow(1), "a")
        table.insert(flow(1), "b")  # same key: fine
        assert table.get(flow(1)) == "b"


class _FixedDesignation:
    """flow -> core via a simple deterministic rule for tests."""

    def __init__(self, num_cores: int):
        self.num_cores = num_cores

    def __call__(self, flow_id: FiveTuple) -> int:
        return flow_id.src_port % self.num_cores


def make_partitioned(num_cores=4, enforce=True):
    return PartitionedFlowState(
        num_cores,
        _FixedDesignation(num_cores),
        COSTS,
        CoherenceModel(COSTS),
        enforce=enforce,
    )


class TestPartitionedFlowState:
    def test_insert_on_designated_core_succeeds(self):
        state = make_partitioned()
        f = flow(0)  # port 1000 % 4 == 0
        entry, cycles = state.insert_local(0, f, {"v": 1})
        assert entry == {"v": 1}
        assert cycles > 0

    def test_insert_on_wrong_core_raises(self):
        state = make_partitioned()
        with pytest.raises(WritingPartitionError):
            state.insert_local(1, flow(0), {})

    def test_remove_on_wrong_core_raises(self):
        state = make_partitioned()
        state.insert_local(0, flow(0), {})
        with pytest.raises(WritingPartitionError):
            state.remove_local(2, flow(0))

    def test_get_local_on_wrong_core_raises(self):
        """get_local returns a *modifiable* entry: designated cores only."""
        state = make_partitioned()
        state.insert_local(0, flow(0), {})
        with pytest.raises(WritingPartitionError):
            state.get_local(3, flow(0))

    def test_get_from_any_core_reads_designated_table(self):
        state = make_partitioned()
        state.insert_local(0, flow(0), {"v": 42})
        entry, _ = state.get(2, flow(0))
        assert entry == {"v": 42}

    def test_remote_read_costs_more_than_local(self):
        state = make_partitioned()
        state.insert_local(0, flow(0), {})
        _, local_cycles = state.get(0, flow(0))
        _, remote_cycles = state.get(1, flow(0))
        assert remote_cycles > local_cycles
        assert state.remote_reads == 1 and state.local_reads == 1

    def test_enforcement_can_be_disabled(self):
        state = make_partitioned(enforce=False)
        state.insert_local(1, flow(0), {})  # would raise with enforce=True

    def test_get_many_amortizes_remote_lookups(self):
        flows = [flow(4 * i) for i in range(4)]  # all designated to core 0

        def populate():
            state = make_partitioned()
            for f in flows:
                state.insert_local(0, f, {})
            return state

        # Fresh state each way: coherence sharing from the first
        # measurement would make the second one artificially cheap.
        _, batched = populate().get_many(1, flows)
        fresh = populate()
        individual = sum(fresh.get(1, f)[1] for f in flows)
        assert batched < individual

    def test_get_missing_entry_returns_none(self):
        state = make_partitioned()
        entry, cycles = state.get(0, flow(0))
        assert entry is None and cycles > 0

    def test_total_entries(self):
        state = make_partitioned()
        state.insert_local(0, flow(0), {})
        state.insert_local(1, flow(1), {})
        assert state.total_entries() == 2


class TestSharedFlowState:
    def test_any_core_may_write(self):
        state = SharedFlowState(COSTS)
        state.insert_local(0, flow(0), {"v": 1})
        state.insert_local(3, flow(1), {"v": 2})
        assert state.get(1, flow(0))[0] == {"v": 1}

    def test_every_access_pays_the_lock(self):
        state = SharedFlowState(COSTS)
        _, insert_cycles = state.insert_local(0, flow(0), {})
        assert insert_cycles >= COSTS.lock_cycles
        _, read_cycles = state.get(0, flow(0))
        assert read_cycles >= COSTS.lock_cycles

    def test_bouncing_writers_pay_invalidations(self):
        state = SharedFlowState(COSTS)
        state.insert_local(0, flow(0), {})
        _, cycles = state.insert_local(1, flow(0), {})
        assert cycles >= COSTS.lock_cycles + COSTS.cache_invalidation

    def test_get_many(self):
        state = SharedFlowState(COSTS)
        flows = [flow(i) for i in range(3)]
        for i, f in enumerate(flows):
            state.insert_local(0, f, i)
        entries, cycles = state.get_many(1, flows)
        assert entries == [0, 1, 2]
        assert cycles > 0


class TestDesignatedCoreMap:
    def test_deterministic(self):
        dmap = DesignatedCoreMap(8)
        assert dmap.core_for(flow(5)) == dmap.core_for(flow(5))

    def test_symmetric_by_default(self):
        dmap = DesignatedCoreMap(8)
        for i in range(50):
            f = flow(i)
            assert dmap.core_for(f) == dmap.core_for(f.reversed())

    def test_covers_all_cores(self):
        dmap = DesignatedCoreMap(8)
        cores = {dmap.core_for(flow(i)) for i in range(300)}
        assert cores == set(range(8))

    def test_in_range(self):
        dmap = DesignatedCoreMap(3)
        for i in range(100):
            assert 0 <= dmap.core_for(flow(i)) < 3

    def test_cache_grows_once_per_flow(self):
        dmap = DesignatedCoreMap(8)
        dmap.core_for(flow(1))
        dmap.core_for(flow(1))
        assert dmap.cache_size() == 1

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            DesignatedCoreMap(0)
