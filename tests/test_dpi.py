"""Tests for Aho-Corasick and the DPI NF (the Sprayer-incompatible case)."""

import random

import pytest

from repro.core import MiddleboxConfig, MiddleboxEngine
from repro.net import ACK, SYN, FiveTuple, make_tcp_packet
from repro.nfs import AhoCorasick, DpiNf
from repro.sim import MILLISECOND, Simulator


def naive_find_all(patterns, text):
    """Reference oracle: every (end_offset, pattern_index)."""
    found = []
    for offset in range(len(text)):
        for index, pattern in enumerate(patterns):
            if text[offset: offset + len(pattern)] == pattern:
                found.append((offset + len(pattern) - 1, index))
    return sorted(found)


class TestAhoCorasick:
    def test_single_pattern(self):
        ac = AhoCorasick([b"abc"])
        _state, matches = ac.scan(0, b"xxabcxxabc")
        assert [m for m in matches] == [(4, 0), (9, 0)]

    def test_overlapping_patterns(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        _state, matches = ac.scan(0, b"ushers")
        found = {(offset, index) for offset, index in matches}
        # "she" ends at 3, "he" ends at 3, "hers" ends at 5.
        assert (3, 1) in found and (3, 0) in found and (5, 3) in found

    def test_matches_against_naive_oracle(self):
        rng = random.Random(4)
        patterns = [bytes(rng.randrange(97, 100) for _ in range(rng.randrange(1, 4)))
                    for _ in range(5)]
        patterns = list(dict.fromkeys(patterns))  # dedupe
        text = bytes(rng.randrange(97, 100) for _ in range(300))
        ac = AhoCorasick(patterns)
        _state, matches = ac.scan(0, text)
        got = sorted((offset, index) for offset, index in matches)
        assert got == naive_find_all(patterns, text)

    def test_cross_packet_matching(self):
        """The property the paper says breaks under spraying: a match
        spanning two packets requires carrying state across them."""
        ac = AhoCorasick([b"attack"])
        state, matches = ac.scan(0, b"...att")
        assert matches == []
        state, matches = ac.scan(state, b"ack...")
        assert len(matches) == 1

    def test_cross_packet_match_lost_without_state(self):
        ac = AhoCorasick([b"attack"])
        _state, first = ac.scan(0, b"...att")
        # Restarting from the root (what independent cores would do):
        _state, second = ac.scan(0, b"ack...")
        assert first == [] and second == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([b""])

    def test_num_states_reasonable(self):
        ac = AhoCorasick([b"ab", b"ac"])
        assert ac.num_states == 4  # root, a, ab, ac


class TestDpiNf:
    def _drive(self, mode: str, payloads):
        sim = Simulator()
        nf = DpiNf(patterns=[b"attack", b"virus"])
        engine = MiddleboxEngine(sim, nf, MiddleboxConfig(mode=mode))
        engine.set_egress(lambda p: None)
        rng = random.Random(2)
        flow = FiveTuple(0x0A000001, 0x0A010001, 1234, 80, 6)
        engine.receive(
            make_tcp_packet(flow, flags=SYN, tcp_checksum=rng.getrandbits(16)), sim.now
        )
        sim.run(until=sim.now + MILLISECOND)
        for seq, payload in enumerate(payloads):
            packet = make_tcp_packet(
                flow, flags=ACK, seq=seq, tcp_checksum=rng.getrandbits(16)
            )
            packet.payload = payload
            packet.payload_len = len(payload)
            engine.receive(packet, sim.now)
            sim.run(until=sim.now + MILLISECOND)
        return nf, engine

    def test_detects_pattern_within_packet(self):
        nf, _ = self._drive("rss", [b"xx attack xx"])
        assert len(nf.matches) == 1

    def test_detects_cross_packet_pattern_under_rss(self):
        nf, _ = self._drive("rss", [b"...atta", b"ck..."])
        assert len(nf.matches) == 1

    def test_detects_cross_packet_pattern_under_sprayer_via_shared_state(self):
        # Packets are processed in arrival order here (one at a time),
        # so the shared state machine still finds the split pattern —
        # at the cost of a locked RMW per packet.
        nf, engine = self._drive("sprayer", [b"...atta", b"ck..."])
        assert len(nf.matches) == 1
        assert nf._shared_states  # shared state was needed

    def test_rss_keeps_automaton_state_core_local(self):
        nf, engine = self._drive("rss", [b"hello", b"world"])
        assert not nf._shared_states
        locals_with_state = [
            ctx for ctx in engine.contexts if ctx.local.get("dpi_states")
        ]
        assert len(locals_with_state) == 1

    def test_clean_traffic_matches_nothing(self):
        nf, _ = self._drive("rss", [b"just some innocent text"] * 3)
        assert nf.matches == []
